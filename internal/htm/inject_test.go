package htm

import (
	"testing"

	"rtle/internal/mem"
)

// scriptedInjector replays a fixed per-attempt script: at attempt i it
// returns beginReasons[i] at begin, accessReasons[i] at the first access,
// and commitReasons[i] pre-commit (None or missing entries pass).
type scriptedInjector struct {
	attempt       int
	beginReasons  []AbortReason
	accessReasons []AbortReason
	commitReasons []AbortReason
	squeezeReads  int
}

func at(s []AbortReason, i int) AbortReason {
	if i < len(s) {
		return s[i]
	}
	return None
}

func (in *scriptedInjector) TxBegin() (int, int, AbortReason) {
	in.attempt++
	return in.squeezeReads, 0, at(in.beginReasons, in.attempt-1)
}

func (in *scriptedInjector) TxAccess(nth int, write bool) AbortReason {
	if nth == 1 {
		return at(in.accessReasons, in.attempt-1)
	}
	return None
}

func (in *scriptedInjector) TxPreCommit() AbortReason {
	return at(in.commitReasons, in.attempt-1)
}

// TestRunCountsEachAttemptExactlyOnce is the double-counting regression
// test for Tx.Run's panic-recovery accounting: across commits, organic
// aborts, and injected aborts at every injection point, each attempt must
// increment Starts once and exactly one of Commits or Aborts[reason] —
// never zero, never both.
func TestRunCountsEachAttemptExactlyOnce(t *testing.T) {
	inj := &scriptedInjector{
		// Attempt scripts (None = pass that point):
		//  0: commit
		//  1: injected abort at begin (Conflict)
		//  2: injected abort at first access (Spurious)
		//  3: injected abort pre-commit (Capacity)
		//  4: organic explicit abort (body calls Abort)
		//  5: commit
		beginReasons:  []AbortReason{None, Conflict, None, None, None, None},
		accessReasons: []AbortReason{None, None, Spurious, None, None, None},
		commitReasons: []AbortReason{None, None, None, Capacity, None, None},
	}
	m := mem.New(256)
	a := m.Alloc(1)
	tx := NewTx(m, Config{NewInjector: func() Injector { return inj }})

	wantReasons := []AbortReason{None, Conflict, Spurious, Capacity, Explicit, None}
	for i, want := range wantReasons {
		got := tx.Run(func(tx *Tx) {
			v := tx.Read(a)
			if i == 4 {
				tx.Abort()
			}
			tx.Write(a, v+1)
		})
		if got != want {
			t.Fatalf("attempt %d: reason %v, want %v", i, got, want)
		}
		// The core invariant, checked after every attempt: each start
		// produced exactly one outcome.
		if tx.Stats.Starts != tx.Stats.Commits+tx.Stats.TotalAborts() {
			t.Fatalf("after attempt %d: Starts=%d Commits=%d Aborts=%d — an attempt was double- or un-counted",
				i, tx.Stats.Starts, tx.Stats.Commits, tx.Stats.TotalAborts())
		}
	}

	if tx.Stats.Commits != 2 {
		t.Fatalf("Commits = %d, want 2", tx.Stats.Commits)
	}
	wantAborts := map[AbortReason]uint64{Conflict: 1, Spurious: 1, Capacity: 1, Explicit: 1}
	for r, n := range wantAborts {
		if tx.Stats.Aborts[r] != n {
			t.Fatalf("Aborts[%v] = %d, want %d", r, tx.Stats.Aborts[r], n)
		}
	}
	// The injected subset excludes the organic Explicit abort.
	if tx.Stats.TotalInjected() != 3 {
		t.Fatalf("TotalInjected = %d, want 3 (the Explicit abort was organic)", tx.Stats.TotalInjected())
	}
	if tx.Stats.Injected[Explicit] != 0 {
		t.Fatal("organic Explicit abort booked as injected")
	}
}

// TestForeignPanicNotDoubleCounted pins down the accounting of the one path
// where an attempt has no outcome: a panic that is not a transaction abort
// propagates to the caller after Run discards speculative state, leaving
// Starts = Commits + Aborts + 1 for that attempt — it must not be booked as
// an abort (or worse, a commit).
func TestForeignPanicNotDoubleCounted(t *testing.T) {
	m := mem.New(256)
	a := m.Alloc(1)
	tx := NewTx(m, Config{})

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("foreign panic swallowed")
			}
		}()
		tx.Run(func(tx *Tx) {
			tx.Write(a, 1)
			panic("application bug")
		})
	}()

	if tx.Stats.Starts != 1 || tx.Stats.Commits != 0 || tx.Stats.TotalAborts() != 0 {
		t.Fatalf("after foreign panic: Starts=%d Commits=%d Aborts=%d, want 1/0/0",
			tx.Stats.Starts, tx.Stats.Commits, tx.Stats.TotalAborts())
	}
	// The Tx must remain usable and count correctly afterwards.
	if r := tx.Run(func(tx *Tx) { tx.Write(a, 2) }); r != None {
		t.Fatalf("attempt after foreign panic aborted: %v", r)
	}
	if tx.Stats.Starts != 2 || tx.Stats.Commits != 1 {
		t.Fatalf("post-recovery counts: Starts=%d Commits=%d, want 2/1", tx.Stats.Starts, tx.Stats.Commits)
	}
	if got := m.Load(a); got != 2 {
		t.Fatalf("heap word = %d, want 2 (panicking attempt's write leaked or commit lost)", got)
	}
}

// TestSqueezedLimitsResetPerAttempt verifies a squeeze applies only to the
// attempt it was injected into: the next attempt runs at configured limits.
func TestSqueezedLimitsResetPerAttempt(t *testing.T) {
	inj := &scriptedInjector{squeezeReads: 2}
	m := mem.New(1 << 10)
	base := m.AllocLines(4)
	tx := NewTx(m, Config{ReadLines: 8, NewInjector: func() Injector { return inj }})

	readAll := func(tx *Tx) {
		for j := 0; j < 4; j++ {
			tx.Read(base + mem.Addr(j*mem.WordsPerLine))
		}
	}
	if r := tx.Run(readAll); r != Capacity {
		t.Fatalf("squeezed attempt: %v, want Capacity", r)
	}
	if !tx.LastAbortInjected() {
		t.Fatal("squeeze-caused capacity abort not marked injected")
	}
	inj.squeezeReads = 0 // stop squeezing
	if r := tx.Run(readAll); r != None {
		t.Fatalf("unsqueezed attempt: %v, want commit", r)
	}
	if tx.LastAbortInjected() {
		t.Fatal("LastAbortInjected sticky across a committed attempt")
	}
}
