package htm

import (
	"testing"
	"testing/quick"

	"rtle/internal/mem"
)

func TestLineSetAddContains(t *testing.T) {
	s := newLineSet(16)
	if s.contains(5) {
		t.Fatal("empty set contains 5")
	}
	if !s.add(5) {
		t.Fatal("first add reported duplicate")
	}
	if s.add(5) {
		t.Fatal("second add reported new")
	}
	if !s.contains(5) || s.len() != 1 {
		t.Fatalf("membership wrong: contains=%v len=%d", s.contains(5), s.len())
	}
}

func TestLineSetZeroLine(t *testing.T) {
	s := newLineSet(16)
	if !s.add(0) {
		t.Fatal("adding line 0 failed")
	}
	if !s.contains(0) {
		t.Fatal("line 0 not found")
	}
}

func TestLineSetResetIsEmpty(t *testing.T) {
	s := newLineSet(16)
	for i := uint64(0); i < 10; i++ {
		s.add(i)
	}
	s.reset()
	if s.len() != 0 {
		t.Fatalf("len after reset = %d", s.len())
	}
	for i := uint64(0); i < 10; i++ {
		if s.contains(i) {
			t.Fatalf("stale member %d visible after reset", i)
		}
	}
}

func TestLineSetManyGenerations(t *testing.T) {
	s := newLineSet(8)
	for gen := 0; gen < 1000; gen++ {
		base := uint64(gen * 100)
		for i := uint64(0); i < 8; i++ {
			if !s.add(base + i) {
				t.Fatalf("gen %d: add %d reported duplicate", gen, base+i)
			}
		}
		if s.len() != 8 {
			t.Fatalf("gen %d: len %d", gen, s.len())
		}
		s.reset()
	}
}

func TestLineSetEpochWrap(t *testing.T) {
	s := newLineSet(4)
	s.epoch = ^uint32(0) - 1 // force a wrap within a few resets
	for gen := 0; gen < 5; gen++ {
		s.add(uint64(gen))
		if !s.contains(uint64(gen)) {
			t.Fatalf("gen %d lost its member across epoch wrap", gen)
		}
		s.reset()
		if s.contains(uint64(gen)) {
			t.Fatalf("gen %d member survived reset across epoch wrap", gen)
		}
	}
}

func TestLineSetForEach(t *testing.T) {
	s := newLineSet(16)
	want := map[uint64]bool{3: true, 7: true, 11: true}
	for l := range want {
		s.add(l)
	}
	got := map[uint64]bool{}
	s.forEach(func(l uint64) bool { got[l] = true; return true })
	if len(got) != len(want) {
		t.Fatalf("forEach visited %d, want %d", len(got), len(want))
	}
	for l := range want {
		if !got[l] {
			t.Fatalf("forEach missed %d", l)
		}
	}
}

func TestLineSetForEachEarlyStop(t *testing.T) {
	s := newLineSet(16)
	for i := uint64(0); i < 10; i++ {
		s.add(i)
	}
	n := 0
	s.forEach(func(uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("forEach continued after false: %d visits", n)
	}
}

func TestQuickLineSetMatchesMap(t *testing.T) {
	s := newLineSet(128)
	model := map[uint64]bool{}
	f := func(line uint16, resetNow bool) bool {
		if resetNow {
			s.reset()
			model = map[uint64]bool{}
			return s.len() == 0
		}
		l := uint64(line % 200)
		added := s.add(l)
		wantAdded := !model[l]
		model[l] = true
		return added == wantAdded && s.contains(l) && s.len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMapPutGet(t *testing.T) {
	w := newWriteMap(16)
	if _, ok := w.get(9); ok {
		t.Fatal("empty map returned a value")
	}
	w.put(9, 100)
	if v, ok := w.get(9); !ok || v != 100 {
		t.Fatalf("get = %d,%v", v, ok)
	}
	w.put(9, 200) // overwrite keeps one order entry
	if v, _ := w.get(9); v != 200 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if w.len() != 1 {
		t.Fatalf("len = %d, want 1", w.len())
	}
}

func TestWriteMapOrderPreserved(t *testing.T) {
	w := newWriteMap(16)
	addrs := []mem.Addr{5, 3, 9, 1}
	for i, a := range addrs {
		w.put(a, uint64(i))
	}
	w.put(3, 99) // overwrite must not change order
	var got []mem.Addr
	w.forEachOrdered(func(a mem.Addr, v uint64) { got = append(got, a) })
	for i, a := range addrs {
		if got[i] != a {
			t.Fatalf("order[%d] = %d, want %d", i, got[i], a)
		}
	}
}

func TestWriteMapReset(t *testing.T) {
	w := newWriteMap(8)
	w.put(1, 10)
	w.reset()
	if w.len() != 0 {
		t.Fatalf("len after reset = %d", w.len())
	}
	if _, ok := w.get(1); ok {
		t.Fatal("stale entry visible after reset")
	}
}

func TestWriteMapEpochWrap(t *testing.T) {
	w := newWriteMap(4)
	w.epoch = ^uint32(0) - 1
	for gen := uint64(0); gen < 5; gen++ {
		w.put(mem.Addr(gen), gen*10)
		if v, ok := w.get(mem.Addr(gen)); !ok || v != gen*10 {
			t.Fatalf("gen %d lost entry across wrap", gen)
		}
		w.reset()
	}
}

func TestQuickWriteMapMatchesMap(t *testing.T) {
	w := newWriteMap(256)
	model := map[mem.Addr]uint64{}
	f := func(addr uint16, val uint64, resetNow bool) bool {
		if resetNow {
			w.reset()
			model = map[mem.Addr]uint64{}
			return w.len() == 0
		}
		a := mem.Addr(addr % 500)
		w.put(a, val)
		model[a] = val
		v, ok := w.get(a)
		return ok && v == val && w.len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveEveryYields(t *testing.T) {
	// Functional check: transactions still commit correctly with
	// interleaving enabled.
	m := mem.New(1 << 12)
	a := m.Alloc(1)
	tx := NewTx(m, Config{InterleaveEvery: 1})
	for i := 0; i < 50; i++ {
		if r := tx.Run(func(tx *Tx) { tx.Write(a, tx.Read(a)+1) }); r != None {
			t.Fatalf("abort with interleaving: %v", r)
		}
	}
	if m.Load(a) != 50 {
		t.Fatalf("counter = %d", m.Load(a))
	}
}
