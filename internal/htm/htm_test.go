package htm

import (
	"sync"
	"testing"
	"testing/quick"

	"rtle/internal/mem"
)

func newHeap() *mem.Memory { return mem.New(1 << 14) }

func TestCommitPublishesWrites(t *testing.T) {
	m := newHeap()
	a := m.Alloc(2)
	tx := NewTx(m, Config{})
	reason := tx.Run(func(tx *Tx) {
		tx.Write(a, 11)
		tx.Write(a+1, 22)
	})
	if reason != None {
		t.Fatalf("commit failed: %v", reason)
	}
	if m.Load(a) != 11 || m.Load(a+1) != 22 {
		t.Fatalf("writes not published: %d, %d", m.Load(a), m.Load(a+1))
	}
}

func TestWritesInvisibleBeforeCommit(t *testing.T) {
	m := newHeap()
	a := m.Alloc(1)
	tx := NewTx(m, Config{})
	tx.Run(func(tx *Tx) {
		tx.Write(a, 7)
		if m.Load(a) != 0 {
			t.Error("speculative write visible to a plain load before commit")
		}
	})
}

func TestAbortDiscardsWrites(t *testing.T) {
	m := newHeap()
	a := m.Alloc(1)
	m.Store(a, 1)
	tx := NewTx(m, Config{})
	reason := tx.Run(func(tx *Tx) {
		tx.Write(a, 99)
		tx.Abort()
	})
	if reason != Explicit {
		t.Fatalf("reason = %v, want explicit", reason)
	}
	if m.Load(a) != 1 {
		t.Fatalf("aborted write leaked: %d", m.Load(a))
	}
}

func TestReadOwnWrite(t *testing.T) {
	m := newHeap()
	a := m.Alloc(1)
	m.Store(a, 5)
	tx := NewTx(m, Config{})
	reason := tx.Run(func(tx *Tx) {
		if got := tx.Read(a); got != 5 {
			t.Errorf("pre-write read = %d, want 5", got)
		}
		tx.Write(a, 6)
		if got := tx.Read(a); got != 6 {
			t.Errorf("read-own-write = %d, want 6", got)
		}
	})
	if reason != None {
		t.Fatalf("commit failed: %v", reason)
	}
}

func TestPlainStoreDoomsReader(t *testing.T) {
	m := newHeap()
	a := m.Alloc(1)
	tx := NewTx(m, Config{})
	reason := tx.Run(func(tx *Tx) {
		tx.Read(a)
		// A non-transactional store by "another thread" — strong
		// atomicity must doom this transaction.
		m.Store(a, 42)
		tx.Write(m.Alloc(1), 1) // force a real commit (not read-only)
	})
	if reason != Conflict {
		t.Fatalf("reason = %v, want conflict", reason)
	}
}

func TestOpacityReadAfterExternalStoreAborts(t *testing.T) {
	m := newHeap()
	a := m.Alloc(1)
	b := m.AllocLines(1) // separate line
	tx := NewTx(m, Config{})
	reason := tx.Run(func(tx *Tx) {
		tx.Read(a)
		m.Store(b, 9) // external store after our snapshot
		// Reading b now must abort: its version is newer than our
		// snapshot, so we can never be consistent with a.
		tx.Read(b)
		t.Error("read of a newer line did not abort (opacity violated)")
	})
	if reason != Conflict {
		t.Fatalf("reason = %v, want conflict", reason)
	}
}

func TestReadOnlyCommitsDespiteLaterStores(t *testing.T) {
	m := newHeap()
	a := m.Alloc(1)
	b := m.AllocLines(1)
	m.Store(a, 1)
	tx := NewTx(m, Config{})
	reason := tx.Run(func(tx *Tx) {
		tx.Read(a)
		m.Store(b, 5) // a line we never read — must not hurt us
	})
	if reason != None {
		t.Fatalf("read-only transaction aborted on unrelated store: %v", reason)
	}
}

func TestReadCapacityAbort(t *testing.T) {
	m := newHeap()
	base := m.AllocLines(10)
	tx := NewTx(m, Config{ReadLines: 4})
	reason := tx.Run(func(tx *Tx) {
		for i := 0; i < 10; i++ {
			tx.Read(base + mem.Addr(i*mem.WordsPerLine))
		}
	})
	if reason != Capacity {
		t.Fatalf("reason = %v, want capacity", reason)
	}
}

func TestWriteCapacityAbort(t *testing.T) {
	m := newHeap()
	base := m.AllocLines(10)
	tx := NewTx(m, Config{WriteLines: 4})
	reason := tx.Run(func(tx *Tx) {
		for i := 0; i < 10; i++ {
			tx.Write(base+mem.Addr(i*mem.WordsPerLine), 1)
		}
	})
	if reason != Capacity {
		t.Fatalf("reason = %v, want capacity", reason)
	}
}

func TestSameLineDoesNotConsumeCapacity(t *testing.T) {
	m := newHeap()
	a := m.AllocLines(1)
	tx := NewTx(m, Config{ReadLines: 1, WriteLines: 1})
	reason := tx.Run(func(tx *Tx) {
		for i := 0; i < mem.WordsPerLine; i++ {
			tx.Read(a + mem.Addr(i))
			tx.Write(a+mem.Addr(i), uint64(i))
		}
	})
	if reason != None {
		t.Fatalf("same-line accesses overflowed capacity: %v", reason)
	}
}

func TestUnsupportedAborts(t *testing.T) {
	m := newHeap()
	tx := NewTx(m, Config{})
	reason := tx.Run(func(tx *Tx) { tx.Unsupported() })
	if reason != Unsupported {
		t.Fatalf("reason = %v, want unsupported", reason)
	}
}

func TestSpuriousInjection(t *testing.T) {
	m := newHeap()
	a := m.Alloc(1)
	tx := NewTx(m, Config{SpuriousProb: 1.0, SpuriousSeed: 42})
	reason := tx.Run(func(tx *Tx) { tx.Read(a) })
	if reason != Spurious {
		t.Fatalf("reason = %v, want spurious with probability 1", reason)
	}
}

func TestNoSpuriousWhenDisabled(t *testing.T) {
	m := newHeap()
	a := m.Alloc(1)
	tx := NewTx(m, Config{})
	for i := 0; i < 100; i++ {
		if reason := tx.Run(func(tx *Tx) { tx.Read(a) }); reason != None {
			t.Fatalf("unexpected abort: %v", reason)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	m := newHeap()
	a := m.Alloc(1)
	tx := NewTx(m, Config{})
	tx.Run(func(tx *Tx) { tx.Write(a, 1) })
	tx.Run(func(tx *Tx) { tx.Abort() })
	tx.Run(func(tx *Tx) { tx.Unsupported() })
	if tx.Stats.Starts != 3 {
		t.Errorf("Starts = %d, want 3", tx.Stats.Starts)
	}
	if tx.Stats.Commits != 1 {
		t.Errorf("Commits = %d, want 1", tx.Stats.Commits)
	}
	if tx.Stats.Aborts[Explicit] != 1 || tx.Stats.Aborts[Unsupported] != 1 {
		t.Errorf("abort breakdown wrong: %v", tx.Stats.Aborts)
	}
	if tx.Stats.TotalAborts() != 2 {
		t.Errorf("TotalAborts = %d, want 2", tx.Stats.TotalAborts())
	}
}

func TestStatsMerge(t *testing.T) {
	var a, b Stats
	a.Starts, a.Commits = 3, 2
	a.Aborts[Conflict] = 1
	b.Starts, b.Commits = 5, 4
	b.Aborts[Conflict] = 1
	a.Merge(&b)
	if a.Starts != 8 || a.Commits != 6 || a.Aborts[Conflict] != 2 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestNestedRunPanics(t *testing.T) {
	m := newHeap()
	tx := NewTx(m, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("nested Run did not panic")
		}
	}()
	tx.Run(func(inner *Tx) {
		tx.Run(func(*Tx) {})
	})
}

func TestUserPanicPropagatesAndDiscards(t *testing.T) {
	m := newHeap()
	a := m.Alloc(1)
	tx := NewTx(m, Config{})
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		tx.Run(func(tx *Tx) {
			tx.Write(a, 5)
			panic("boom")
		})
	}()
	if m.Load(a) != 0 {
		t.Fatal("write leaked through a user panic")
	}
	if tx.Active() {
		t.Fatal("Tx still active after panic")
	}
	// The Tx must be reusable.
	if reason := tx.Run(func(tx *Tx) { tx.Write(a, 1) }); reason != None {
		t.Fatalf("Tx unusable after user panic: %v", reason)
	}
}

func TestAccessorsOutsideTransactionPanic(t *testing.T) {
	m := newHeap()
	tx := NewTx(m, Config{})
	for name, f := range map[string]func(){
		"Read":        func() { tx.Read(8) },
		"Write":       func() { tx.Write(8, 1) },
		"Abort":       func() { tx.Abort() },
		"Unsupported": func() { tx.Unsupported() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s outside a transaction did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestConflictBetweenTransactions(t *testing.T) {
	// Two transactions interleaved by hand: T1 reads a; T2 writes a and
	// commits; T1 must fail its commit.
	m := newHeap()
	a := m.Alloc(1)
	other := m.Alloc(1)
	t1 := NewTx(m, Config{})
	t2 := NewTx(m, Config{})
	reason := t1.Run(func(tx *Tx) {
		tx.Read(a)
		if r2 := t2.Run(func(tx2 *Tx) { tx2.Write(a, 3) }); r2 != None {
			t.Fatalf("T2 commit failed: %v", r2)
		}
		tx.Write(other, 1)
	})
	if reason != Conflict {
		t.Fatalf("T1 reason = %v, want conflict", reason)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	m := newHeap()
	a := m.Alloc(1)
	t1 := NewTx(m, Config{})
	t2 := NewTx(m, Config{})
	reason := t1.Run(func(tx *Tx) {
		tx.Read(a)
		tx.Write(a, 1)
		if r2 := t2.Run(func(tx2 *Tx) { tx2.Write(a, 2) }); r2 != None {
			t.Fatalf("T2 commit failed: %v", r2)
		}
	})
	if reason != Conflict {
		t.Fatalf("T1 reason = %v, want conflict", reason)
	}
	if m.Load(a) != 2 {
		t.Fatalf("final value %d, want T2's 2", m.Load(a))
	}
}

func TestBlindWriteSerializes(t *testing.T) {
	// A write-only transaction to a line another transaction also wrote
	// must still produce one of the two values, never a mix.
	m := newHeap()
	a := m.Alloc(1)
	t1 := NewTx(m, Config{})
	if reason := t1.Run(func(tx *Tx) { tx.Write(a, 10) }); reason != None {
		t.Fatalf("blind write failed: %v", reason)
	}
	if m.Load(a) != 10 {
		t.Fatalf("blind write lost: %d", m.Load(a))
	}
}

func TestAbortReasonStrings(t *testing.T) {
	want := map[AbortReason]string{
		None: "none", Conflict: "conflict", Capacity: "capacity",
		Explicit: "explicit", Unsupported: "unsupported", Spurious: "spurious",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("String(%d) = %q, want %q", r, r.String(), s)
		}
	}
	if AbortReason(200).String() == "" {
		t.Error("unknown reason produced empty string")
	}
}

// TestConcurrentCounterAtomicity hammers one counter from many goroutines
// using transactional increments with retry; the final value must equal
// the number of successful commits.
func TestConcurrentCounterAtomicity(t *testing.T) {
	m := newHeap()
	a := m.Alloc(1)
	const goroutines = 8
	const commitsPerG = 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			tx := NewTx(m, Config{})
			done := 0
			for done < commitsPerG {
				reason := tx.Run(func(tx *Tx) {
					tx.Write(a, tx.Read(a)+1)
				})
				if reason == None {
					done++
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Load(a); got != goroutines*commitsPerG {
		t.Fatalf("lost updates: counter = %d, want %d", got, goroutines*commitsPerG)
	}
}

// TestConcurrentDisjointLinesAllCommit checks that transactions on
// disjoint lines do not abort each other spuriously... they may still
// conflict on the global clock only via ordering, which must not cause
// aborts.
func TestConcurrentDisjointLinesAllCommit(t *testing.T) {
	m := newHeap()
	const goroutines = 8
	addrs := make([]mem.Addr, goroutines)
	for i := range addrs {
		addrs[i] = m.AllocLines(1)
	}
	var wg sync.WaitGroup
	wg.Add(goroutines)
	aborted := make([]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(id int) {
			defer wg.Done()
			tx := NewTx(m, Config{})
			for i := 0; i < 500; i++ {
				for {
					reason := tx.Run(func(tx *Tx) {
						tx.Write(addrs[id], tx.Read(addrs[id])+1)
					})
					if reason == None {
						break
					}
					aborted[id]++
				}
			}
		}(g)
	}
	wg.Wait()
	for i, a := range addrs {
		if got := m.Load(a); got != 500 {
			t.Fatalf("goroutine %d counter = %d, want 500", i, got)
		}
	}
}

// TestQuickTransactionalSwap verifies with random values that a two-word
// transactional swap is atomic and preserves both values.
func TestQuickTransactionalSwap(t *testing.T) {
	m := newHeap()
	a, b := m.AllocLines(1), m.AllocLines(1)
	tx := NewTx(m, Config{})
	f := func(x, y uint64) bool {
		m.Store(a, x)
		m.Store(b, y)
		reason := tx.Run(func(tx *Tx) {
			va, vb := tx.Read(a), tx.Read(b)
			tx.Write(a, vb)
			tx.Write(b, va)
		})
		return reason == None && m.Load(a) == y && m.Load(b) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintReporting(t *testing.T) {
	m := newHeap()
	base := m.AllocLines(4)
	tx := NewTx(m, Config{})
	tx.Run(func(tx *Tx) {
		tx.Read(base)
		tx.Read(base + mem.WordsPerLine)
		tx.Write(base+2*mem.WordsPerLine, 1)
		if tx.ReadSetLines() != 2 {
			t.Errorf("ReadSetLines = %d, want 2", tx.ReadSetLines())
		}
		if tx.WriteSetLines() != 1 {
			t.Errorf("WriteSetLines = %d, want 1", tx.WriteSetLines())
		}
	})
}
