package htm

import (
	"testing"

	"rtle/internal/mem"
)

// Per-access and per-transaction costs of the simulated HTM, the
// "hardware" side of DESIGN.md's cost model.

func BenchmarkTxReadOnly(b *testing.B) {
	m := mem.New(1 << 14)
	a := m.AllocLines(1)
	m.Store(a, 1)
	tx := NewTx(m, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Run(func(tx *Tx) { tx.Read(a) })
	}
}

func BenchmarkTxReadWrite(b *testing.B) {
	m := mem.New(1 << 14)
	a := m.AllocLines(1)
	tx := NewTx(m, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Run(func(tx *Tx) { tx.Write(a, tx.Read(a)+1) })
	}
}

func BenchmarkTxWide(b *testing.B) {
	// A transaction shaped like an AVL operation: ~16 line reads, 4
	// word writes.
	m := mem.New(1 << 16)
	base := m.AllocLines(16)
	tx := NewTx(m, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Run(func(tx *Tx) {
			for l := 0; l < 16; l++ {
				tx.Read(base + mem.Addr(l*mem.WordsPerLine))
			}
			for l := 0; l < 4; l++ {
				tx.Write(base+mem.Addr(l*mem.WordsPerLine)+1, uint64(i))
			}
		})
	}
}

func BenchmarkTxAbortExplicit(b *testing.B) {
	// The cost of the panic-based abort path (rollback + unwind).
	m := mem.New(1 << 14)
	a := m.AllocLines(1)
	tx := NewTx(m, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Run(func(tx *Tx) {
			tx.Write(a, 1)
			tx.Abort()
		})
	}
}

func BenchmarkLineSetAddReset(b *testing.B) {
	s := newLineSet(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := uint64(0); l < 16; l++ {
			s.add(uint64(i)*31 + l)
		}
		s.reset()
	}
}

func BenchmarkWriteMapPutReset(b *testing.B) {
	w := newWriteMap(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			w.put(mem.Addr(uint64(i)*17+uint64(j)), uint64(j))
		}
		w.reset()
	}
}
