package htm

import "rtle/internal/mem"

// lineSet is an open-addressing set of cache-line indices, reset in O(1)
// by bumping an epoch tag instead of clearing the table. It is the
// transaction read/write-set index — the hot path of every transactional
// access — so it avoids Go map overhead.
//
// Slots hold epoch<<32 | (line+1); a slot belongs to the current
// generation only if its epoch matches. Line indices fit comfortably in
// 32 bits (a 2^32-line heap would be 2 TiB of simulated memory).
type lineSet struct {
	slots []uint64
	mask  uint64
	n     int
	epoch uint32
}

func newLineSet(capacity int) *lineSet {
	size := 4
	for size < capacity*2 {
		size <<= 1
	}
	return &lineSet{slots: make([]uint64, size), mask: uint64(size - 1), epoch: 1}
}

// reset empties the set in O(1).
func (s *lineSet) reset() {
	s.n = 0
	s.epoch++
	if s.epoch == 0 { // epoch wrapped: lazily stale tags could collide
		clear(s.slots)
		s.epoch = 1
	}
}

func (s *lineSet) len() int { return s.n }

// add inserts line, reporting whether it was absent. The caller bounds
// occupancy (capacity aborts fire before the table fills).
func (s *lineSet) add(line uint64) bool {
	want := uint64(s.epoch)<<32 | (line + 1)
	i := mix(line) & s.mask
	for {
		slot := s.slots[i]
		if slot == want {
			return false
		}
		if uint32(slot>>32) != s.epoch || slot == 0 {
			s.slots[i] = want
			s.n++
			return true
		}
		i = (i + 1) & s.mask
	}
}

// contains reports membership.
func (s *lineSet) contains(line uint64) bool {
	want := uint64(s.epoch)<<32 | (line + 1)
	i := mix(line) & s.mask
	for {
		slot := s.slots[i]
		if slot == want {
			return true
		}
		if uint32(slot>>32) != s.epoch || slot == 0 {
			return false
		}
		i = (i + 1) & s.mask
	}
}

// forEach visits every member of the current generation.
func (s *lineSet) forEach(fn func(line uint64) bool) {
	if s.n == 0 {
		return
	}
	for _, slot := range s.slots {
		if slot != 0 && uint32(slot>>32) == s.epoch {
			if !fn((slot & 0xffffffff) - 1) {
				return
			}
		}
	}
}

// writeMap buffers a transaction's speculative stores: an epoch-tagged
// open-addressing index from word address to a dense values array, plus
// the insertion order for deterministic write-back.
type writeMap struct {
	keys  []uint64 // epoch<<32 | (addr+1) -> index+1 into vals, packed below
	idx   []uint32
	vals  []uint64
	order []mem.Addr
	mask  uint64
	epoch uint32
}

func newWriteMap(capacity int) *writeMap {
	size := 4
	for size < capacity*2 {
		size <<= 1
	}
	return &writeMap{
		keys:  make([]uint64, size),
		idx:   make([]uint32, size),
		vals:  make([]uint64, 0, capacity),
		order: make([]mem.Addr, 0, capacity),
		mask:  uint64(size - 1),
		epoch: 1,
	}
}

func (w *writeMap) reset() {
	w.vals = w.vals[:0]
	w.order = w.order[:0]
	w.epoch++
	if w.epoch == 0 {
		clear(w.keys)
		w.epoch = 1
	}
}

func (w *writeMap) len() int { return len(w.order) }

// get returns the buffered value for addr, if any.
func (w *writeMap) get(a mem.Addr) (uint64, bool) {
	want := uint64(w.epoch)<<32 | (uint64(a) + 1)
	i := mix(uint64(a)) & w.mask
	for {
		k := w.keys[i]
		if k == want {
			return w.vals[w.idx[i]], true
		}
		if uint32(k>>32) != w.epoch || k == 0 {
			return 0, false
		}
		i = (i + 1) & w.mask
	}
}

// put buffers a store. The caller bounds occupancy via the line budget
// (at most WriteLines × WordsPerLine distinct words).
func (w *writeMap) put(a mem.Addr, v uint64) {
	want := uint64(w.epoch)<<32 | (uint64(a) + 1)
	i := mix(uint64(a)) & w.mask
	for {
		k := w.keys[i]
		if k == want {
			w.vals[w.idx[i]] = v
			return
		}
		if uint32(k>>32) != w.epoch || k == 0 {
			w.keys[i] = want
			w.idx[i] = uint32(len(w.vals))
			w.vals = append(w.vals, v)
			w.order = append(w.order, a)
			return
		}
		i = (i + 1) & w.mask
	}
}

// forEachOrdered visits buffered stores in insertion order with their
// final values.
func (w *writeMap) forEachOrdered(fn func(a mem.Addr, v uint64)) {
	for _, a := range w.order {
		v, _ := w.get(a)
		fn(a, v)
	}
}

// mix is a fast 64-bit finalizer (splitmix64 tail) for slot hashing.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}
