// Package htm simulates best-effort hardware transactional memory over the
// simulated shared heap of package mem.
//
// The engine follows the TL2 recipe — snapshot a global clock at begin,
// validate each read against the snapshot, buffer writes, and at commit
// lock the write-set lines, revalidate the read set, and publish — which
// yields exactly the guarantees the paper's algorithms assume of real HTM:
//
//   - Strong atomicity per access: a non-transactional store (mem.Store)
//     bumps the line version, dooming every in-flight transaction that read
//     the line.
//   - Opacity: a transaction never observes a state newer than its
//     snapshot, so doomed transactions abort instead of computing on torn
//     data.
//   - Invisibility of speculative writes until commit.
//   - Best-effort completion: transactions can fail for data conflicts,
//     capacity overflow (bounded read/write sets, as an L1-bounded HTM),
//     explicit self-abort, "unsupported instructions" (the Unsupported
//     hook, modelling a divide-by-zero or syscall under RTM), and — when
//     fault injection is enabled — spuriously.
//
// What the engine deliberately does NOT provide is atomicity for a group of
// non-transactional accesses: the thread holding the lock in a TLE scheme
// executes plain loads and stores and receives no isolation from committing
// transactions. Real HTM has the same hole, and closing it is precisely the
// job of the RW-TLE and FG-TLE barriers in package core.
package htm

// The transaction engine manipulates the raw heap by definition; the
// rtlevet txbody and barrierdiscipline passes do not apply here.
//
//rtle:engine

import (
	"fmt"
	"runtime"

	"rtle/internal/mem"
	"rtle/internal/rng"
)

// AbortReason classifies the outcome of a transaction attempt. None means
// the transaction committed.
type AbortReason uint8

const (
	// None reports a successful commit.
	None AbortReason = iota
	// Conflict is a data conflict with a concurrent transaction or a
	// non-transactional store.
	Conflict
	// Capacity is a read- or write-set overflow.
	Capacity
	// Explicit is a self-abort requested by the transaction body (for
	// example an instrumentation barrier detecting an orec conflict).
	Explicit
	// Unsupported models an instruction that can never complete inside a
	// hardware transaction.
	Unsupported
	// Spurious is an injected fault (interrupt, false sharing, ...).
	Spurious

	// NumReasons is the number of distinct AbortReason values.
	NumReasons = int(Spurious) + 1
)

// String returns the reason's name.
func (r AbortReason) String() string {
	switch r {
	case None:
		return "none"
	case Conflict:
		return "conflict"
	case Capacity:
		return "capacity"
	case Explicit:
		return "explicit"
	case Unsupported:
		return "unsupported"
	case Spurious:
		return "spurious"
	default:
		return fmt.Sprintf("AbortReason(%d)", uint8(r))
	}
}

// Injector is the deterministic fault-injection hook a Tx consults at the
// points where real HTM faults manifest: transaction begin, each
// transactional access, and just before commit processing. This is the
// simulation's edge over real RTM — Haswell decides for itself when to
// abort spuriously or overflow, while a simulated Tx can be told, making
// the rarest interleavings reproducible on demand. internal/fault provides
// the standard plan-driven implementation.
//
// Each Tx owns a private Injector instance (built by Config.NewInjector),
// so implementations need no synchronization for per-thread state; shared
// coordination (conflict storms) happens behind the implementation's own
// atomics.
type Injector interface {
	// TxBegin is consulted once per attempt, after the clock snapshot.
	// A reason other than None aborts the attempt immediately (before
	// the body runs). Positive readLines/writeLines shrink the
	// attempt's effective capacity limits below the configured ones —
	// the "capacity squeeze" fault; zero keeps the configured limit.
	TxBegin() (readLines, writeLines int, reason AbortReason)
	// TxAccess is consulted before the nth (1-based) transactional
	// access of the attempt; write marks stores. A reason other than
	// None aborts the attempt.
	TxAccess(nth int, write bool) AbortReason
	// TxPreCommit is consulted after the body returns, before commit
	// locking and validation. A reason other than None aborts.
	TxPreCommit() AbortReason
}

// Config bounds a simulated transaction. The zero value selects defaults.
type Config struct {
	// ReadLines is the maximum number of distinct cache lines a
	// transaction may read (default 512, a 32 KB L1 of 64-byte lines).
	ReadLines int
	// WriteLines is the maximum number of distinct cache lines a
	// transaction may write (default 128, a store-buffer-bounded HTM).
	WriteLines int
	// SpuriousProb, if positive, aborts each access with the given
	// probability. Used for fault-injection tests.
	SpuriousProb float64
	// SpuriousSeed seeds the fault-injection generator.
	SpuriousSeed uint64
	// NewInjector, if non-nil, builds the fault injector for each Tx
	// created with this Config (one private instance per Tx, so
	// per-thread injector state needs no locking). internal/fault's
	// Director.NewInjector is the standard factory.
	NewInjector func() Injector
	// InterleaveEvery, if positive, yields the goroutine every N
	// transactional accesses. This is concurrency virtualization for
	// hosts with fewer cores than worker threads: on real parallel
	// hardware transactions overlap in time and conflict; on a
	// single core a transaction usually runs to completion within its
	// scheduler slice and contention vanishes. Yielding inside the
	// transaction restores the overlap (see DESIGN.md §1.5). Zero
	// disables it.
	InterleaveEvery int
}

// DefaultReadLines and DefaultWriteLines are the capacity bounds used when
// Config fields are zero.
const (
	DefaultReadLines  = 512
	DefaultWriteLines = 128
)

func (c Config) readLines() int {
	if c.ReadLines > 0 {
		return c.ReadLines
	}
	return DefaultReadLines
}

func (c Config) writeLines() int {
	if c.WriteLines > 0 {
		return c.WriteLines
	}
	return DefaultWriteLines
}

// Stats counts transaction outcomes for one Tx (one thread).
type Stats struct {
	Starts  uint64
	Commits uint64
	Aborts  [NumReasons]uint64
	// Injected breaks down, by reason, the subset of Aborts that were
	// forced by the configured Injector rather than arising organically.
	Injected [NumReasons]uint64
}

// TotalAborts sums aborts across reasons.
func (s *Stats) TotalAborts() uint64 {
	var t uint64
	for _, v := range s.Aborts {
		t += v
	}
	return t
}

// TotalInjected sums injected aborts across reasons.
func (s *Stats) TotalInjected() uint64 {
	var t uint64
	for _, v := range s.Injected {
		t += v
	}
	return t
}

// Merge adds other into s.
func (s *Stats) Merge(other *Stats) {
	s.Starts += other.Starts
	s.Commits += other.Commits
	for i := range s.Aborts {
		s.Aborts[i] += other.Aborts[i]
		s.Injected[i] += other.Injected[i]
	}
}

// abortSignal is the private panic value used to unwind an aborting
// transaction back to Run.
type abortSignal struct{ reason AbortReason }

type lineVer struct {
	line uint64
	ver  uint64
}

// Tx is a reusable transaction context bound to one thread. A Tx must not
// be shared between goroutines. Accessor methods (Read, Write, Abort,
// Unsupported) may only be called from inside the body passed to Run.
type Tx struct {
	m   *mem.Memory
	cfg Config

	snapshot uint64
	active   bool
	accesses int

	readLines  *lineSet
	writeLines *lineSet
	writes     *writeMap
	locked     []lineVer

	fault *rng.Xoshiro256
	inj   Injector

	// Per-attempt effective capacity limits (the injector may squeeze
	// them below the configured ones at begin).
	effReadLines  int
	effWriteLines int
	// injecting marks that the abort currently unwinding was forced by
	// the injector; lastInjected publishes it for the finished attempt.
	injecting    bool
	lastInjected bool
	// lastCommitVer is the serialization version of the last committed
	// attempt (see CommitVersion).
	lastCommitVer uint64

	// Stats accumulates outcomes across all Run calls on this Tx.
	Stats Stats
}

// NewTx returns a transaction context over m with the given configuration.
func NewTx(m *mem.Memory, cfg Config) *Tx {
	t := &Tx{
		m:          m,
		cfg:        cfg,
		readLines:  newLineSet(cfg.readLines()),
		writeLines: newLineSet(cfg.writeLines()),
		writes:     newWriteMap(cfg.writeLines() * mem.WordsPerLine),
	}
	if cfg.SpuriousProb > 0 {
		t.fault = rng.NewXoshiro256(cfg.SpuriousSeed | 1)
	}
	if cfg.NewInjector != nil {
		t.inj = cfg.NewInjector()
	}
	return t
}

// Memory returns the heap this Tx operates on.
func (t *Tx) Memory() *mem.Memory { return t.m }

// Active reports whether a transaction is currently executing on t.
func (t *Tx) Active() bool { return t.active }

// Snapshot returns the clock snapshot of the current attempt. It is only
// meaningful while Active.
func (t *Tx) Snapshot() uint64 { return t.snapshot }

// LastAbortInjected reports whether the most recent Run's abort was forced
// by the configured Injector (false after a commit or an organic abort).
func (t *Tx) LastAbortInjected() bool { return t.lastInjected }

// CommitVersion returns the serialization version of the most recent
// committed Run: the global-clock value at which its writes were published,
// or — for a read-only transaction — its snapshot (a read-only transaction
// serializes at snapshot time). It orders committed transactions for
// opacity checking (package check): sorting write transactions by
// CommitVersion reproduces their publication order, and a read-only
// transaction serializes after exactly the writers whose version is <= its
// own. Only meaningful after Run returned None.
func (t *Tx) CommitVersion() uint64 { return t.lastCommitVer }

// Run executes body as one hardware-transaction attempt and returns None on
// commit or the abort reason. Speculative writes are discarded on abort.
// Run never retries: retry policy belongs to the caller, as with real RTM
// where XBEGIN's fallback path owns the decision.
//
// Panics raised by body that are not transaction aborts propagate to the
// caller after the speculative state is discarded.
func (t *Tx) Run(body func(*Tx)) (reason AbortReason) {
	if t.active {
		panic("htm: nested Run on the same Tx")
	}
	t.begin()
	defer func() {
		t.reset()
		if r := recover(); r != nil {
			if sig, ok := r.(abortSignal); ok {
				reason = sig.reason
				t.Stats.Aborts[sig.reason]++
				if t.injecting {
					t.Stats.Injected[sig.reason]++
					t.lastInjected = true
				}
				return
			}
			panic(r)
		}
	}()
	t.injectBegin()
	body(t)
	if t.inj != nil {
		if r := t.inj.TxPreCommit(); r != None {
			t.injectAbort(r)
		}
	}
	reason = t.commit()
	if reason == None {
		t.Stats.Commits++
	} else {
		t.Stats.Aborts[reason]++
	}
	return reason
}

func (t *Tx) begin() {
	t.active = true
	t.accesses = 0
	t.snapshot = t.m.ClockLoad()
	t.effReadLines = t.cfg.readLines()
	t.effWriteLines = t.cfg.writeLines()
	t.injecting = false
	t.lastInjected = false
	t.Stats.Starts++
}

// injectBegin consults the injector's begin hook: capacity squeezes shrink
// the attempt's effective limits (never past the configured caps — the
// line-set arenas are sized for those), and a returned reason aborts. It
// runs after Run's recovery handler is installed, so an injected begin
// abort is accounted like any other abort.
func (t *Tx) injectBegin() {
	if t.inj == nil {
		return
	}
	rl, wl, reason := t.inj.TxBegin()
	if rl > 0 && rl < t.effReadLines {
		t.effReadLines = rl
	}
	if wl > 0 && wl < t.effWriteLines {
		t.effWriteLines = wl
	}
	if reason != None {
		t.injectAbort(reason)
	}
}

// injectAbort unwinds the attempt with an injector-forced reason, marking
// it so Stats.Injected and LastAbortInjected can distinguish it from an
// organic abort of the same reason.
func (t *Tx) injectAbort(reason AbortReason) {
	t.injecting = true
	t.abort(reason)
}

func (t *Tx) reset() {
	t.active = false
	t.readLines.reset()
	t.writeLines.reset()
	t.writes.reset()
	t.locked = t.locked[:0]
}

// abort unwinds the current attempt with the given reason.
func (t *Tx) abort(reason AbortReason) {
	panic(abortSignal{reason})
}

// Abort self-aborts the current transaction (XABORT).
func (t *Tx) Abort() {
	t.mustBeActive("Abort")
	t.abort(Explicit)
}

// Unsupported models executing an instruction HTM cannot speculate through
// (divide-by-zero in the paper's §6.3 experiment, syscalls, ...). It always
// aborts the current attempt.
func (t *Tx) Unsupported() {
	t.mustBeActive("Unsupported")
	t.abort(Unsupported)
}

func (t *Tx) mustBeActive(op string) {
	if !t.active {
		panic("htm: " + op + " outside a transaction")
	}
}

// onAccess runs the per-access hooks: fault injection (probabilistic and
// plan-driven) and single-core concurrency virtualization (InterleaveEvery).
func (t *Tx) onAccess(write bool) {
	if t.fault != nil && t.fault.Float64() < t.cfg.SpuriousProb {
		t.abort(Spurious)
	}
	t.accesses++
	if t.inj != nil {
		if r := t.inj.TxAccess(t.accesses, write); r != None {
			t.injectAbort(r)
		}
	}
	if n := t.cfg.InterleaveEvery; n > 0 && t.accesses%n == 0 {
		runtime.Gosched()
	}
}

// Read performs a transactional load of a word. It returns the
// transaction's own pending write if there is one. The line joins the read
// set; a version newer than the snapshot, a locked line, or read-set
// overflow aborts the attempt.
func (t *Tx) Read(a mem.Addr) uint64 {
	t.mustBeActive("Read")
	t.onAccess(false)
	if t.writes.len() > 0 {
		if v, ok := t.writes.get(a); ok {
			return v
		}
	}
	line := mem.LineOf(a)
	m1 := t.m.MetaLoad(line)
	v := t.m.WordLoad(a)
	m2 := t.m.MetaLoad(line)
	if m1 != m2 || mem.Locked(m1) || mem.VersionOf(m1) > t.snapshot {
		t.abort(Conflict)
	}
	if t.readLines.len() >= t.effReadLines && !t.readLines.contains(line) {
		if t.readLines.len() < t.cfg.readLines() {
			// The set fits the configured limit: only the injector's
			// squeeze made this an overflow.
			t.injectAbort(Capacity)
		}
		t.abort(Capacity)
	}
	t.readLines.add(line)
	return v
}

// Write performs a transactional store of a word. The value is buffered
// until commit; write-set overflow aborts the attempt.
func (t *Tx) Write(a mem.Addr, v uint64) {
	t.mustBeActive("Write")
	t.onAccess(true)
	line := mem.LineOf(a)
	if t.writeLines.len() >= t.effWriteLines && !t.writeLines.contains(line) {
		if t.writeLines.len() < t.cfg.writeLines() {
			t.injectAbort(Capacity)
		}
		t.abort(Capacity)
	}
	t.writeLines.add(line)
	t.writes.put(a, v)
}

// ReadSetLines and WriteSetLines report the current footprint, for tests
// and adaptive policies.
func (t *Tx) ReadSetLines() int  { return t.readLines.len() }
func (t *Tx) WriteSetLines() int { return t.writeLines.len() }

// commit attempts to make the attempt's writes visible atomically.
func (t *Tx) commit() AbortReason {
	if t.writes.len() == 0 {
		// Read-only transactions were validated read-by-read against
		// the snapshot; they serialize at snapshot time.
		t.lastCommitVer = t.snapshot
		return None
	}
	// Lock the write set. Pure try-lock: any contention aborts, so there
	// is no deadlock and no ordering requirement.
	ok := true
	t.writeLines.forEach(func(line uint64) bool {
		mw := t.m.MetaLoad(line)
		if mem.Locked(mw) || !t.m.TryLockLine(line, mw) {
			ok = false
			return false
		}
		ver := mem.VersionOf(mw)
		t.locked = append(t.locked, lineVer{line, ver})
		if ver > t.snapshot && t.readLines.contains(line) {
			// A line we both read and wrote changed since we read it.
			ok = false
			return false
		}
		return true
	})
	if !ok {
		t.rollbackLocks()
		return Conflict
	}
	// Validate the read set.
	t.readLines.forEach(func(line uint64) bool {
		if t.writeLines.contains(line) {
			return true // validated during locking above
		}
		mw := t.m.MetaLoad(line)
		if mem.Locked(mw) || mem.VersionOf(mw) > t.snapshot {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		t.rollbackLocks()
		return Conflict
	}
	// Publish.
	wv := t.m.ClockTick()
	t.writes.forEachOrdered(func(a mem.Addr, v uint64) {
		t.m.WordStore(a, v)
	})
	for _, lv := range t.locked {
		t.m.UnlockLine(lv.line, wv)
	}
	t.lastCommitVer = wv
	return None
}

// rollbackLocks releases any line locks taken during a failed commit,
// restoring the pre-lock versions.
func (t *Tx) rollbackLocks() {
	for _, lv := range t.locked {
		t.m.UnlockLine(lv.line, lv.ver)
	}
	t.locked = t.locked[:0]
}
