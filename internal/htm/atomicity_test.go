package htm

import (
	"sync"
	"testing"

	"rtle/internal/mem"
)

// TestPlainLoadNeverSeesPartialCommit is the regression test for the
// simulator's most subtle requirement: a non-transactional reader must
// never observe a subset of a transaction's writes (real HTM commits at a
// single instant). Writers transactionally update two words on different
// lines keeping them equal; a plain reader samples both and must always
// see them equal or see both from a previous commit... since it cannot
// read them atomically as a pair, the invariant checked is per-word
// monotonicity plus the pairing at quiescence. The strict check — a load
// during publication — is covered deterministically below.
func TestPlainLoadNeverSeesPartialCommit(t *testing.T) {
	m := mem.New(1 << 12)
	a := m.AllocLines(1)
	line := mem.LineOf(a)

	// Simulate a committing transaction holding the line lock.
	mw := m.MetaLoad(line)
	if !m.TryLockLine(line, mw) {
		t.Fatal("could not lock line")
	}
	loaded := make(chan uint64)
	go func() {
		loaded <- m.Load(a) // must block until the line is unlocked
	}()
	select {
	case v := <-loaded:
		t.Fatalf("Load returned %d while the line was commit-locked", v)
	default:
	}
	m.WordStore(a, 42)
	ver := m.ClockTick()
	m.UnlockLine(line, ver)
	if v := <-loaded; v != 42 {
		t.Fatalf("Load after publication = %d, want 42", v)
	}
}

// TestAtomicRMWVsCommittingTx: transactional increments racing with
// non-transactional FetchAdd increments. Both are individually atomic:
// FetchAdd takes the line lock (serializing against commit publication)
// and bumps the version (dooming transactions that read the old value),
// so no update may ever be lost in either direction. This is the
// htm-level regression for the commit-window bug (a transaction
// validating, then a plain access slipping in before publication); the
// core-level counterpart with a full lock holder is
// core.TestConcurrentCounterMixedPaths.
func TestAtomicRMWVsCommittingTx(t *testing.T) {
	m := mem.New(1 << 12)
	a := m.AllocLines(1)

	const total = 4000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		tx := NewTx(m, Config{})
		for done := 0; done < total; {
			if tx.Run(func(tx *Tx) { tx.Write(a, tx.Read(a)+1) }) == None {
				done++
			}
		}
	}()
	go func() {
		defer wg.Done()
		for done := 0; done < total; done++ {
			m.FetchAdd(a, 1)
		}
	}()
	wg.Wait()
	if got := m.Load(a); got != 2*total {
		t.Fatalf("counter = %d, want %d — an update was lost across the commit window", got, 2*total)
	}
}

// TestUnprotectedPlainRMWCanLoseTxUpdates documents the deliberate
// semantic hole (the one real HTM also has, and the one the paper's
// barriers close): a plain load-compute-store sequence is NOT atomic
// against transaction commits, so updates may be lost. The assertion is
// directional: the counter never exceeds the update count and the
// transactional side alone is never lost below its own contribution...
// which cannot be separated out, so the only safe bound is the total.
func TestUnprotectedPlainRMWCanLoseTxUpdates(t *testing.T) {
	m := mem.New(1 << 12)
	a := m.AllocLines(1)
	const total = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		tx := NewTx(m, Config{})
		for done := 0; done < total; {
			if tx.Run(func(tx *Tx) { tx.Write(a, tx.Read(a)+1) }) == None {
				done++
			}
		}
	}()
	go func() {
		defer wg.Done()
		for done := 0; done < total; done++ {
			m.Store(a, m.Load(a)+1) // unprotected read-modify-write
		}
	}()
	wg.Wait()
	if got := m.Load(a); got > 2*total {
		t.Fatalf("counter = %d exceeds the %d updates performed", got, 2*total)
	}
	if got := m.Load(a); got == 0 {
		t.Fatal("counter is zero: all updates vanished")
	}
}

// TestStoreWaitsForCommitLock: a plain store to a line locked by a commit
// must wait and then land after the publication.
func TestStoreWaitsForCommitLock(t *testing.T) {
	m := mem.New(1 << 12)
	a := m.AllocLines(1)
	line := mem.LineOf(a)
	mw := m.MetaLoad(line)
	if !m.TryLockLine(line, mw) {
		t.Fatal("could not lock line")
	}
	stored := make(chan struct{})
	go func() {
		m.Store(a, 7)
		close(stored)
	}()
	select {
	case <-stored:
		t.Fatal("Store completed while line commit-locked")
	default:
	}
	m.WordStore(a, 1)
	m.UnlockLine(line, m.ClockTick())
	<-stored
	if v := m.Load(a); v != 7 {
		t.Fatalf("plain store lost: %d", v)
	}
}
