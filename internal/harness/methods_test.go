package harness

import (
	"strings"
	"testing"

	"rtle/internal/core"
	"rtle/internal/mem"
)

func TestBuildMethodKnownNames(t *testing.T) {
	names := append([]string{}, MethodNames...)
	names = append(names, "HLE", "FG-TLE(adaptive)", "ALE(64)")
	for _, name := range names {
		m := mem.New(1 << 18)
		meth, err := BuildMethod(name, m, core.Policy{})
		if err != nil {
			t.Errorf("BuildMethod(%q): %v", name, err)
			continue
		}
		if meth.Name() != name {
			t.Errorf("BuildMethod(%q).Name() = %q", name, meth.Name())
		}
		// The method must actually work.
		a := m.AllocLines(1)
		th := meth.NewThread()
		th.Atomic(func(c core.Context) { c.Write(a, 7) })
		if m.Load(a) != 7 {
			t.Errorf("method %q did not execute the critical section", name)
		}
	}
}

func TestBuildMethodUnknownNames(t *testing.T) {
	m := mem.New(1 << 16)
	for _, bad := range []string{"", "FOO", "FG-TLE", "FG-TLE()", "FG-TLE(x)", "FG-TLE(-2)", "ALE(0)", "fg-tle(4)"} {
		if _, err := BuildMethod(bad, m, core.Policy{}); err == nil {
			t.Errorf("BuildMethod(%q) succeeded, want error", bad)
		}
	}
}

func TestMustBuildMethodPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuildMethod did not panic")
		}
	}()
	MustBuildMethod("nope", mem.New(1<<16), core.Policy{})
}

func TestMethodNameListsConsistent(t *testing.T) {
	// Every refined name must be in the full Fig. 5 legend.
	full := map[string]bool{}
	for _, n := range MethodNames {
		full[n] = true
	}
	for _, n := range RefinedNames {
		if !full[n] {
			t.Errorf("refined method %q missing from MethodNames", n)
		}
	}
	// Legend order starts with the baselines, as in the paper.
	if MethodNames[0] != "Lock" {
		t.Errorf("legend should start with Lock: %v", MethodNames[:3])
	}
	for _, n := range MethodNames {
		if strings.Contains(n, " ") {
			t.Errorf("method name %q contains spaces", n)
		}
	}
}
