package harness

import (
	"rtle/internal/avl"
	"rtle/internal/bank"
	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
	"rtle/internal/wanghash"
)

// SetMix is an operation distribution over a set, in percent; the
// remainder after Insert and Remove is Find. The paper writes mixes as
// Insert:Remove:Find, e.g. 20:20:60.
type SetMix struct {
	InsertPct int
	RemovePct int
}

// SeedSet populates set with a deterministic pseudo-random half of the
// keys in [0, keyRange), single-threaded, matching the paper's setup ("we
// initialized the set with half of the keys from that range") so that
// Insert and Remove succeed with probability ~1/2 each and the set size
// stays stable.
func SeedSet(set *avl.Set, keyRange uint64) {
	h := set.NewHandle()
	c := core.Direct(set.Memory())
	for k := uint64(0); k < keyRange; k++ {
		if wanghash.Mix(k)&1 == 0 {
			h.InsertCS(c, k)
			h.AfterInsert(true)
		}
	}
}

// NewSetWorker returns a Worker performing the paper's §6.2 workload on an
// AVL set: operations drawn from mix with keys uniform in [0, keyRange).
func NewSetWorker(set *avl.Set, t core.Thread, mix SetMix, keyRange uint64) Worker {
	h := set.NewHandle()
	return func(r *rng.Xoshiro256) {
		p := r.Intn(100)
		key := r.Uint64n(keyRange)
		switch {
		case p < mix.InsertPct:
			h.Insert(t, key)
		case p < mix.InsertPct+mix.RemovePct:
			h.Remove(t, key)
		default:
			h.Contains(t, key)
		}
	}
}

// SetWorkerFactory adapts NewSetWorker to Run's factory signature.
func SetWorkerFactory(set *avl.Set, mix SetMix, keyRange uint64) WorkerFactory {
	return func(id int, t core.Thread) Worker {
		return NewSetWorker(set, t, mix, keyRange)
	}
}

// NewUnfriendlySetWorker returns the §6.3 corner-case update worker: it
// performs Insert and Remove at equal probability, with an HTM-unfriendly
// instruction (Context.Unsupported) injected into the critical section —
// at its end when atEnd is true, before any shared access otherwise. Such
// operations can never commit on HTM and always fall back to the lock.
func NewUnfriendlySetWorker(set *avl.Set, t core.Thread, keyRange uint64, atEnd bool) Worker {
	h := set.NewHandle()
	return func(r *rng.Xoshiro256) {
		key := r.Uint64n(keyRange)
		insert := r.Intn(2) == 0
		var res bool
		t.Atomic(func(c core.Context) {
			if !atEnd {
				c.Unsupported()
			}
			if insert {
				res = h.InsertCS(c, key)
			} else {
				res = h.RemoveCS(c, key)
			}
			if atEnd {
				c.Unsupported()
			}
		})
		if insert {
			h.AfterInsert(res)
		} else {
			h.AfterRemove(res)
		}
	}
}

// UnfriendlyFactory builds the Fig. 12 fleet: thread 0 runs the
// HTM-unfriendly update worker; all other threads run Find-only workers.
func UnfriendlyFactory(set *avl.Set, keyRange uint64, atEnd bool) WorkerFactory {
	return func(id int, t core.Thread) Worker {
		if id == 0 {
			return NewUnfriendlySetWorker(set, t, keyRange, atEnd)
		}
		return NewSetWorker(set, t, SetMix{}, keyRange)
	}
}

// ScanMix extends SetMix with occasional range scans: ScanPct percent of
// operations count the keys in a random window of ScanSpan keys. Large
// spans overflow the simulated HTM's read capacity, so scans fall back to
// the lock *naturally* — the capacity-driven contended regime the paper
// names in §1, with no fault injection involved. Under plain TLE a
// scanning lock holder stalls everyone; under refined TLE point reads
// keep committing on the slow path.
type ScanMix struct {
	SetMix
	ScanPct  int
	ScanSpan uint64
}

// NewScanWorker returns a worker over set with the given scan-heavy mix.
func NewScanWorker(set *avl.Set, t core.Thread, mix ScanMix, keyRange uint64) Worker {
	h := set.NewHandle()
	return func(r *rng.Xoshiro256) {
		p := r.Intn(100)
		key := r.Uint64n(keyRange)
		switch {
		case p < mix.ScanPct:
			lo := key
			hi := lo + mix.ScanSpan
			if hi >= keyRange {
				hi = keyRange - 1
			}
			h.RangeCount(t, lo, hi)
		case p < mix.ScanPct+mix.InsertPct:
			h.Insert(t, key)
		case p < mix.ScanPct+mix.InsertPct+mix.RemovePct:
			h.Remove(t, key)
		default:
			h.Contains(t, key)
		}
	}
}

// ScanWorkerFactory adapts NewScanWorker to Run's factory signature.
func ScanWorkerFactory(set *avl.Set, mix ScanMix, keyRange uint64) WorkerFactory {
	return func(id int, t core.Thread) Worker {
		return NewScanWorker(set, t, mix, keyRange)
	}
}

// NewBankWorker returns the §6.3 bank worker: transfer a random amount
// between two distinct random accounts (accounts and amount chosen before
// the critical section, as in the paper).
func NewBankWorker(b *bank.Bank, t core.Thread, maxAmount uint64) Worker {
	n := b.Accounts()
	return func(r *rng.Xoshiro256) {
		from := r.Intn(n)
		to := r.Intn(n - 1)
		if to >= from {
			to++
		}
		amount := r.Uint64n(maxAmount) + 1
		b.Transfer(t, from, to, amount)
	}
}

// BankFactory adapts NewBankWorker to Run's factory signature.
func BankFactory(b *bank.Bank, maxAmount uint64) WorkerFactory {
	return func(id int, t core.Thread) Worker {
		return NewBankWorker(b, t, maxAmount)
	}
}

// DefaultSetHeapWords sizes a heap for an AVL experiment: seed nodes plus
// churn headroom (handles recycle removed nodes, so churn is bounded by
// in-flight spares) plus method metadata.
func DefaultSetHeapWords(keyRange uint64, threads int) int {
	nodes := int(keyRange) // ~half live, 2x headroom
	return nodes*mem.WordsPerLine + threads*64*mem.WordsPerLine + 1<<16
}
