package harness

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"

	"rtle/internal/obs"
)

// TestSamplerDisabledConfigs: every disabling combination must return nil,
// and a nil Sampler's Stop must be a no-op.
func TestSamplerDisabledConfigs(t *testing.T) {
	reg := obs.NewRegistry(obs.Config{})
	var buf bytes.Buffer
	cases := []SampleConfig{
		{},
		{Registry: reg, Interval: time.Millisecond},           // no writer
		{Registry: reg, W: &buf},                              // no interval
		{Interval: time.Millisecond, W: &buf},                 // no registry
		{Registry: reg, Interval: -time.Millisecond, W: &buf}, // negative interval
	}
	for i, cfg := range cases {
		if s := StartSampler(cfg); s != nil {
			s.Stop()
			t.Errorf("case %d: disabled config started a sampler", i)
		}
	}
	var s *Sampler
	s.Stop() // must not panic
}

// TestSamplerEmitsRows: a running sampler emits the CSV header plus at
// least the final row on Stop, covering the whole window.
func TestSamplerEmitsRows(t *testing.T) {
	reg := obs.NewRegistry(obs.Config{})
	var buf bytes.Buffer
	s := StartSampler(SampleConfig{
		Registry: reg,
		Interval: 5 * time.Millisecond,
		W:        &buf,
		Format:   "csv",
	})
	if s == nil {
		t.Fatal("enabled config returned nil sampler")
	}
	time.Sleep(12 * time.Millisecond)
	s.Stop()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("sampler emitted %d lines, want header plus at least one row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_ms,ops,") {
		t.Errorf("missing CSV header, got %q", lines[0])
	}
	for _, row := range lines[1:] {
		if n := strings.Count(row, ","); n != 9 {
			t.Errorf("row %q has %d commas, want 9", row, n)
		}
	}
}

// TestSamplerJSONRows: JSON format emits one decodable object per line and
// no header.
func TestSamplerJSONRows(t *testing.T) {
	reg := obs.NewRegistry(obs.Config{})
	var buf bytes.Buffer
	s := StartSampler(SampleConfig{
		Registry: reg,
		Interval: 5 * time.Millisecond,
		W:        &buf,
		Format:   "json",
	})
	time.Sleep(8 * time.Millisecond)
	s.Stop()

	dec := json.NewDecoder(&buf)
	rows := 0
	for dec.More() {
		var row map[string]any
		if err := dec.Decode(&row); err != nil {
			t.Fatalf("row %d: %v", rows, err)
		}
		if _, ok := row["t_ms"]; !ok {
			t.Errorf("row %d missing t_ms: %v", rows, row)
		}
		rows++
	}
	if rows == 0 {
		t.Fatal("no JSON rows emitted")
	}
}

// TestSamplerStopIsFinal: Stop flushes a final partial-interval row even
// when the interval never elapsed, and the goroutine is gone afterwards.
func TestSamplerStopIsFinal(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := obs.NewRegistry(obs.Config{})
	var buf bytes.Buffer
	s := StartSampler(SampleConfig{
		Registry: reg,
		Interval: time.Hour, // never ticks; only Stop emits
		W:        &buf,
	})
	s.Stop()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header plus exactly the final row", len(lines))
	}

	// The sampler goroutine must have exited. NumGoroutine is noisy
	// (test runner helpers come and go), so poll briefly instead of
	// asserting an exact count once.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew from %d to %d after Stop", before, after)
	}
}
