package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"rtle/internal/obs"
)

// SampleConfig asks Run (or a manual StartSampler call) to emit periodic
// delta rows from an obs.Registry while the workload executes: live
// throughput, per-path commit rates, abort rates, and lock-fallback
// fraction. The registry must be the one installed as the method's
// Policy.Observer. Zero Interval or nil Registry/W disables sampling.
type SampleConfig struct {
	// Registry is the observability registry the workload publishes into.
	Registry *obs.Registry
	// Interval is the sampling period (e.g. 100ms).
	Interval time.Duration
	// W receives one sample row per interval.
	W io.Writer
	// Format is "csv" (default; header row then comma-separated values)
	// or "json" (one object per line).
	Format string
}

func (c SampleConfig) enabled() bool {
	return c.Registry != nil && c.Interval > 0 && c.W != nil
}

// Sampler emits periodic delta samples from a registry until stopped.
type Sampler struct {
	cfg   SampleConfig
	start time.Time
	stop  chan struct{}
	done  sync.WaitGroup
}

// sampleRow is the JSON form of one sample.
type sampleRow struct {
	TMillis            int64   `json:"t_ms"`
	Ops                uint64  `json:"ops"`
	OpsPerMilli        float64 `json:"ops_per_ms"`
	FastCommits        uint64  `json:"fast_commits"`
	SlowCommits        uint64  `json:"slow_commits"`
	LockRuns           uint64  `json:"lock_runs"`
	STMCommits         uint64  `json:"stm_commits"`
	AbortRate          float64 `json:"abort_rate"`
	LockFallback       float64 `json:"lock_fallback"`
	SubscriptionAborts uint64  `json:"subscription_aborts"`
}

// StartSampler begins periodic sampling; it returns nil when cfg disables
// sampling. Call Stop to emit the final partial interval and shut down.
func StartSampler(cfg SampleConfig) *Sampler {
	if !cfg.enabled() {
		return nil
	}
	s := &Sampler{cfg: cfg, start: time.Now(), stop: make(chan struct{})}
	if cfg.Format != "json" {
		fmt.Fprintln(cfg.W, "t_ms,ops,ops_per_ms,fast_commits,slow_commits,lock_runs,stm_commits,abort_rate,lock_fallback,subscription_aborts")
	}
	// Reset the delta baseline to now, so the first row covers only the
	// sampled window.
	cfg.Registry.Snapshot()
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		ticker := time.NewTicker(cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				s.emit()
			case <-s.stop:
				s.emit()
				return
			}
		}
	}()
	return s
}

// Stop emits one final row covering the last partial interval and waits for
// the sampler goroutine to exit. Safe to call on a nil Sampler.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	s.done.Wait()
}

func (s *Sampler) emit() {
	d := s.cfg.Registry.DeltaSince()
	row := sampleRow{
		TMillis:            time.Since(s.start).Milliseconds(),
		Ops:                d.Stats.Ops,
		OpsPerMilli:        d.Throughput() / 1e3,
		FastCommits:        d.Stats.FastCommits,
		SlowCommits:        d.Stats.SlowCommits,
		LockRuns:           d.Stats.LockRuns,
		STMCommits:         d.Stats.STMCommitsHTM + d.Stats.STMCommitsLock + d.Stats.STMCommitsRO,
		AbortRate:          d.AbortRate(),
		LockFallback:       d.Stats.LockFallbackFraction(),
		SubscriptionAborts: d.Stats.SubscriptionAborts,
	}
	if s.cfg.Format == "json" {
		_ = json.NewEncoder(s.cfg.W).Encode(row)
		return
	}
	fmt.Fprintf(s.cfg.W, "%d,%d,%.3f,%d,%d,%d,%d,%.4f,%.4f,%d\n",
		row.TMillis, row.Ops, row.OpsPerMilli, row.FastCommits,
		row.SlowCommits, row.LockRuns, row.STMCommits,
		row.AbortRate, row.LockFallback, row.SubscriptionAborts)
}
