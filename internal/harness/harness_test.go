package harness

import (
	"testing"
	"time"

	"rtle/internal/avl"
	"rtle/internal/bank"
	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

func TestRunCountMode(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewTLE(m, core.Policy{})
	a := m.AllocLines(1)
	res := Run(meth, Config{Threads: 4, OpsPerThread: 100, Seed: 1},
		func(id int, th core.Thread) Worker {
			return func(r *rng.Xoshiro256) {
				th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
			}
		})
	if res.Total.Ops != 400 {
		t.Fatalf("Ops = %d, want 400", res.Total.Ops)
	}
	if m.Load(a) != 400 {
		t.Fatalf("counter = %d, want 400", m.Load(a))
	}
	if res.Threads != 4 || len(res.PerThread) != 4 {
		t.Fatalf("thread accounting wrong: %d/%d", res.Threads, len(res.PerThread))
	}
	if res.Method != "TLE" {
		t.Fatalf("method name %q", res.Method)
	}
}

func TestRunDurationMode(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewLock(m)
	a := m.AllocLines(1)
	res := Run(meth, Config{Threads: 2, Duration: 50 * time.Millisecond, Seed: 1},
		func(id int, th core.Thread) Worker {
			return func(r *rng.Xoshiro256) {
				th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
			}
		})
	if res.Total.Ops == 0 {
		t.Fatal("no operations completed in duration mode")
	}
	if res.Elapsed < 50*time.Millisecond {
		t.Fatalf("elapsed %v shorter than the configured duration", res.Elapsed)
	}
	if m.Load(a) != res.Total.Ops {
		t.Fatalf("counter %d != ops %d", m.Load(a), res.Total.Ops)
	}
}

func TestRunDefaultsToOneThread(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewLock(m)
	res := Run(meth, Config{OpsPerThread: 5},
		func(id int, th core.Thread) Worker {
			return func(r *rng.Xoshiro256) { th.Atomic(func(core.Context) {}) }
		})
	if res.Threads != 1 || res.Total.Ops != 5 {
		t.Fatalf("defaulting wrong: %d threads, %d ops", res.Threads, res.Total.Ops)
	}
}

func TestSeedSetSizeAndDeterminism(t *testing.T) {
	m := mem.New(1 << 22)
	set := avl.New(m)
	const keyRange = 1024
	SeedSet(set, keyRange)
	c := core.Direct(m)
	size := set.Size(c)
	// A deterministic pseudo-random half: within 20% of keyRange/2.
	if size < keyRange*4/10 || size > keyRange*6/10 {
		t.Fatalf("seeded size %d not near %d", size, keyRange/2)
	}
	if err := set.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
	m2 := mem.New(1 << 22)
	set2 := avl.New(m2)
	SeedSet(set2, keyRange)
	if set2.Size(core.Direct(m2)) != size {
		t.Fatal("SeedSet not deterministic")
	}
}

func TestSetWorkerMixRespected(t *testing.T) {
	m := mem.New(1 << 22)
	set := avl.New(m)
	SeedSet(set, 256)
	meth := core.NewLock(m)
	res := Run(meth, Config{Threads: 2, OpsPerThread: 1500, Seed: 3},
		SetWorkerFactory(set, SetMix{InsertPct: 20, RemovePct: 20}, 256))
	if res.Total.Ops != 3000 {
		t.Fatalf("ops %d, want 3000", res.Total.Ops)
	}
	if err := set.CheckInvariants(core.Direct(m)); err != nil {
		t.Fatal(err)
	}
	// The set should stay near half-full under a balanced mix.
	size := set.Size(core.Direct(m))
	if size < 70 || size > 190 {
		t.Fatalf("set size %d drifted far from 128 under a balanced mix", size)
	}
}

func TestUnfriendlyFactoryForcesLockPath(t *testing.T) {
	m := mem.New(1 << 22)
	set := avl.New(m)
	SeedSet(set, 128)
	meth := core.NewFGTLE(m, 256, core.Policy{})
	res := Run(meth, Config{Threads: 3, OpsPerThread: 60, Seed: 2},
		UnfriendlyFactory(set, 128, true))
	// Thread 0's updates can never commit on HTM.
	if res.PerThread[0].LockRuns != 60 {
		t.Fatalf("unfriendly thread LockRuns = %d, want 60", res.PerThread[0].LockRuns)
	}
	if err := set.CheckInvariants(core.Direct(m)); err != nil {
		t.Fatal(err)
	}
}

func TestBankFactoryConserves(t *testing.T) {
	m := mem.New(1 << 18)
	b := bank.New(m, 32, 1000)
	meth := core.NewRWTLE(m, core.Policy{})
	Run(meth, Config{Threads: 4, OpsPerThread: 300, Seed: 5}, BankFactory(b, 50))
	if err := b.CheckConservation(core.Direct(m), 32*1000); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputAndSpeedup(t *testing.T) {
	r1 := &Result{Elapsed: time.Second, Total: core.Stats{Ops: 1000}}
	r2 := &Result{Elapsed: time.Second, Total: core.Stats{Ops: 4000}}
	if got := r1.Throughput(); got != 1.0 {
		t.Fatalf("Throughput = %v ops/ms, want 1.0", got)
	}
	if got := r2.Speedup(r1); got != 4.0 {
		t.Fatalf("Speedup = %v, want 4.0", got)
	}
	empty := &Result{}
	if empty.Throughput() != 0 || r1.Speedup(empty) != 0 {
		t.Fatal("zero guards failed")
	}
}

func TestSlowPathMetrics(t *testing.T) {
	r := &Result{Total: core.Stats{
		SlowCommits:   500,
		LockRuns:      100,
		LockHoldNanos: int64(100 * time.Millisecond),
	}}
	if got := r.SlowHTMThroughput(); got != 5.0 {
		t.Fatalf("SlowHTMThroughput = %v, want 5.0", got)
	}
	if got := r.LockPathThroughput(); got != 1.0 {
		t.Fatalf("LockPathThroughput = %v, want 1.0", got)
	}
	if (&Result{}).SlowHTMThroughput() != 0 {
		t.Fatal("zero guard failed")
	}
}

func TestRelativeTimeUnderLock(t *testing.T) {
	base := &Result{Total: core.Stats{LockRuns: 100, LockHoldNanos: 1000}}
	r := &Result{Total: core.Stats{LockRuns: 10, LockHoldNanos: 300}}
	// Per lock run: r 30ns vs base 10ns => 3x.
	if got := r.RelativeTimeUnderLock(base); got != 3.0 {
		t.Fatalf("RelativeTimeUnderLock = %v, want 3.0", got)
	}
}

func TestExecTypeDistribution(t *testing.T) {
	r := &Result{Total: core.Stats{
		FastCommits:    50,
		SlowCommits:    25,
		STMCommitsHTM:  10,
		STMCommitsRO:   5,
		STMCommitsLock: 5,
		LockRuns:       5,
	}}
	f := r.ExecTypeDistribution()
	if f.HTMFast != 0.5 || f.HTMSlow != 0.25 || f.STMFast != 0.15 || f.STMSlow != 0.05 || f.Lock != 0.05 {
		t.Fatalf("fractions wrong: %+v", f)
	}
}

func TestValidationsPerTxAndFallbackRate(t *testing.T) {
	r := &Result{Total: core.Stats{Validations: 30, STMStarts: 10, LockRuns: 2, Ops: 8}}
	if got := r.ValidationsPerTx(); got != 3.0 {
		t.Fatalf("ValidationsPerTx = %v, want 3", got)
	}
	if got := r.LockFallbackRate(); got != 0.25 {
		t.Fatalf("LockFallbackRate = %v, want 0.25", got)
	}
}

func TestDeterministicWorkloadSameSeed(t *testing.T) {
	run := func() uint64 {
		m := mem.New(1 << 22)
		set := avl.New(m)
		SeedSet(set, 128)
		meth := core.NewLock(m)
		Run(meth, Config{Threads: 1, OpsPerThread: 1000, Seed: 42},
			SetWorkerFactory(set, SetMix{InsertPct: 30, RemovePct: 30}, 128))
		var sum uint64
		for _, k := range set.Keys(core.Direct(m)) {
			sum = sum*31 + k
		}
		return sum
	}
	if run() != run() {
		t.Fatal("single-threaded runs with the same seed diverged")
	}
}

func TestScanWorkerCapacityFallback(t *testing.T) {
	m := mem.New(1 << 22)
	set := avl.New(m)
	SeedSet(set, 8192)
	meth := core.NewFGTLE(m, 256, core.Policy{})
	mix := ScanMix{
		SetMix:   SetMix{InsertPct: 10, RemovePct: 10},
		ScanPct:  20,
		ScanSpan: 4096,
	}
	res := Run(meth, Config{Threads: 2, OpsPerThread: 100, Seed: 8},
		ScanWorkerFactory(set, mix, 8192))
	if res.Total.Ops != 200 {
		t.Fatalf("ops = %d", res.Total.Ops)
	}
	// Wide scans must overflow HTM capacity and reach the lock.
	if res.Total.LockRuns == 0 {
		t.Fatal("no lock fallbacks despite capacity-overflowing scans")
	}
	if err := set.CheckInvariants(core.Direct(m)); err != nil {
		t.Fatal(err)
	}
}

func TestScanWorkerClampsRange(t *testing.T) {
	// A span larger than the key range must not panic or scan outside.
	m := mem.New(1 << 22)
	set := avl.New(m)
	SeedSet(set, 64)
	meth := core.NewLock(m)
	mix := ScanMix{ScanPct: 100, ScanSpan: 1 << 20}
	res := Run(meth, Config{Threads: 1, OpsPerThread: 50, Seed: 2},
		ScanWorkerFactory(set, mix, 64))
	if res.Total.Ops != 50 {
		t.Fatalf("ops = %d", res.Total.Ops)
	}
}
