package harness

import (
	"fmt"
	"strconv"
	"strings"

	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/norec"
	"rtle/internal/rhnorec"
)

// MethodNames lists every synchronization method of the paper's Fig. 5, in
// its legend order.
var MethodNames = []string{
	"Lock", "NOrec", "RHNOrec", "TLE", "RW-TLE",
	"FG-TLE(1)", "FG-TLE(4)", "FG-TLE(16)", "FG-TLE(256)",
	"FG-TLE(1024)", "FG-TLE(4096)", "FG-TLE(8192)",
}

// RefinedNames lists the refined-TLE variants of Fig. 6.
var RefinedNames = []string{
	"RW-TLE", "FG-TLE(1)", "FG-TLE(4)", "FG-TLE(16)", "FG-TLE(256)",
	"FG-TLE(1024)", "FG-TLE(4096)", "FG-TLE(8192)",
}

// BuildMethod constructs a method by its Fig. 5 legend name over m.
// Recognized: "Lock", "TLE", "HLE", "RW-TLE", "FG-TLE(<power-of-two>)",
// "FG-TLE(adaptive)", "ALE(<power-of-two>)", "NOrec", "RHNOrec".
func BuildMethod(name string, m *mem.Memory, p core.Policy) (core.Method, error) {
	switch name {
	case "Lock":
		return core.NewLockWithPolicy(m, p), nil
	case "TLE":
		return core.NewTLE(m, p), nil
	case "HLE":
		return core.NewHLE(m, p), nil
	case "RW-TLE":
		return core.NewRWTLE(m, p), nil
	case "NOrec":
		return norec.New(m, p), nil
	case "RHNOrec":
		return rhnorec.New(m, p), nil
	case "FG-TLE(adaptive)":
		return core.NewAdaptiveFGTLE(m, p, core.AdaptiveConfig{}), nil
	}
	if rest, ok := strings.CutPrefix(name, "FG-TLE("); ok {
		if ns, ok := strings.CutSuffix(rest, ")"); ok {
			n, err := strconv.Atoi(ns)
			if err == nil && n > 0 {
				return core.NewFGTLE(m, n, p), nil
			}
		}
	}
	if rest, ok := strings.CutPrefix(name, "ALE("); ok {
		if ns, ok := strings.CutSuffix(rest, ")"); ok {
			n, err := strconv.Atoi(ns)
			if err == nil && n > 0 {
				return core.NewALE(m, n, p), nil
			}
		}
	}
	return nil, fmt.Errorf("harness: unknown method %q", name)
}

// MustBuildMethod is BuildMethod for statically-known names.
func MustBuildMethod(name string, m *mem.Memory, p core.Policy) core.Method {
	meth, err := BuildMethod(name, m, p)
	if err != nil {
		panic(err)
	}
	return meth
}
