package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Record is one experiment data point flattened for export: the
// identifying axes, the paper-relevant derived metrics, and the raw
// counters, suitable for plotting the figures from CSV/JSON without
// re-running.
type Record struct {
	Method  string  `json:"method"`
	Threads int     `json:"threads"`
	Label   string  `json:"label,omitempty"` // free-form axis (mix, key range, ...)
	Seconds float64 `json:"seconds"`

	Ops          uint64  `json:"ops"`
	Throughput   float64 `json:"opsPerMs"`
	FastCommits  uint64  `json:"fastCommits"`
	SlowCommits  uint64  `json:"slowCommits"`
	LockRuns     uint64  `json:"lockRuns"`
	STMCommits   uint64  `json:"stmCommits"`
	FastAborts   uint64  `json:"fastAborts"`
	SlowAborts   uint64  `json:"slowAborts"`
	LockHoldMs   float64 `json:"lockHoldMs"`
	STMTimeMs    float64 `json:"stmTimeMs"`
	SlowHTMTput  float64 `json:"slowHtmOpsPerMs"`
	LockPathTput float64 `json:"lockPathOpsPerMs"`
	Validations  float64 `json:"validationsPerTx"`
	LockFallback float64 `json:"lockFallbackRate"`
}

// Record flattens the result, labelling it with an axis description.
func (r *Result) Record(label string) Record {
	st := &r.Total
	var fastAborts, slowAborts uint64
	for i := range st.FastAborts {
		fastAborts += st.FastAborts[i]
		slowAborts += st.SlowAborts[i]
	}
	return Record{
		Method:       r.Method,
		Threads:      r.Threads,
		Label:        label,
		Seconds:      r.Elapsed.Seconds(),
		Ops:          st.Ops,
		Throughput:   r.Throughput(),
		FastCommits:  st.FastCommits,
		SlowCommits:  st.SlowCommits,
		LockRuns:     st.LockRuns,
		STMCommits:   st.STMCommitsHTM + st.STMCommitsLock + st.STMCommitsRO,
		FastAborts:   fastAborts,
		SlowAborts:   slowAborts,
		LockHoldMs:   float64(st.LockHoldNanos) / 1e6,
		STMTimeMs:    float64(st.STMTimeNanos) / 1e6,
		SlowHTMTput:  r.SlowHTMThroughput(),
		LockPathTput: r.LockPathThroughput(),
		Validations:  r.ValidationsPerTx(),
		LockFallback: r.LockFallbackRate(),
	}
}

// csvHeader matches WriteCSV's row layout.
var csvHeader = []string{
	"method", "threads", "label", "seconds", "ops", "opsPerMs",
	"fastCommits", "slowCommits", "lockRuns", "stmCommits",
	"fastAborts", "slowAborts", "lockHoldMs", "stmTimeMs",
	"slowHtmOpsPerMs", "lockPathOpsPerMs", "validationsPerTx", "lockFallbackRate",
}

// WriteCSV emits records as CSV with a header row.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, r := range records {
		row := []string{
			r.Method, strconv.Itoa(r.Threads), r.Label, f(r.Seconds),
			u(r.Ops), f(r.Throughput),
			u(r.FastCommits), u(r.SlowCommits), u(r.LockRuns), u(r.STMCommits),
			u(r.FastAborts), u(r.SlowAborts), f(r.LockHoldMs), f(r.STMTimeMs),
			f(r.SlowHTMTput), f(r.LockPathTput), f(r.Validations), f(r.LockFallback),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits records as a JSON array (indented).
func WriteJSON(w io.Writer, records []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// Summary returns a one-line human-readable digest of the run, used by the
// CLI tools.
func (r *Result) Summary() string {
	st := &r.Total
	return fmt.Sprintf("%s T=%d: %.0f ops/ms (%d ops in %v; fast=%d slow=%d lock=%d stm=%d)",
		r.Method, r.Threads, r.Throughput(), st.Ops,
		r.Elapsed.Round(time.Millisecond),
		st.FastCommits, st.SlowCommits, st.LockRuns,
		st.STMCommitsHTM+st.STMCommitsLock+st.STMCommitsRO)
}
