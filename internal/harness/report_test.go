package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

func sampleResult() *Result {
	return &Result{
		Method:  "FG-TLE(256)",
		Threads: 4,
		Elapsed: 2 * time.Second,
		Total: core.Stats{
			Ops: 4000, FastCommits: 3000, SlowCommits: 500, LockRuns: 500,
			LockHoldNanos: int64(time.Second / 4),
			Validations:   10, STMStarts: 5,
		},
	}
}

func TestRecordFlattens(t *testing.T) {
	rec := sampleResult().Record("mix=20:20:60")
	if rec.Method != "FG-TLE(256)" || rec.Threads != 4 || rec.Label != "mix=20:20:60" {
		t.Fatalf("identity fields wrong: %+v", rec)
	}
	if rec.Throughput != 2.0 {
		t.Fatalf("Throughput = %v, want 2.0", rec.Throughput)
	}
	if rec.SlowHTMTput != 2.0 { // 500 commits / 250ms
		t.Fatalf("SlowHTMTput = %v, want 2.0", rec.SlowHTMTput)
	}
	if rec.LockFallback != 0.125 {
		t.Fatalf("LockFallback = %v, want 0.125", rec.LockFallback)
	}
}

func TestWriteCSVRoundTrips(t *testing.T) {
	recs := []Record{sampleResult().Record("a"), sampleResult().Record("b")}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(rows))
	}
	if rows[0][0] != "method" || len(rows[0]) != len(csvHeader) {
		t.Fatalf("header wrong: %v", rows[0])
	}
	if rows[1][2] != "a" || rows[2][2] != "b" {
		t.Fatalf("labels wrong: %v / %v", rows[1][2], rows[2][2])
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	recs := []Record{sampleResult().Record("x")}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var back []Record
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != recs[0] {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestSummaryMentionsEssentials(t *testing.T) {
	s := sampleResult().Summary()
	for _, want := range []string{"FG-TLE(256)", "T=4", "ops/ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}

func TestMedianPicksMiddleRun(t *testing.T) {
	i := 0
	throughputs := []uint64{100, 900, 500} // median by throughput: 500
	res := Median(3, func() *Result {
		r := &Result{Elapsed: time.Second, Total: core.Stats{Ops: throughputs[i]}}
		i++
		return r
	})
	if res.Total.Ops != 500 {
		t.Fatalf("median picked ops=%d, want 500", res.Total.Ops)
	}
}

func TestMedianDegenerateN(t *testing.T) {
	calls := 0
	res := Median(0, func() *Result {
		calls++
		return &Result{Elapsed: time.Second, Total: core.Stats{Ops: 1}}
	})
	if calls != 1 || res == nil {
		t.Fatalf("Median(0) ran %d times", calls)
	}
}

func TestMedianEndToEnd(t *testing.T) {
	res := Median(3, func() *Result {
		m := mem.New(1 << 16)
		meth := core.NewTLE(m, core.Policy{})
		a := m.AllocLines(1)
		return Run(meth, Config{Threads: 2, OpsPerThread: 200, Seed: 9},
			func(id int, th core.Thread) Worker {
				return func(r *rng.Xoshiro256) {
					th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
				}
			})
	})
	if res.Total.Ops != 400 {
		t.Fatalf("median run ops = %d, want 400", res.Total.Ops)
	}
}
