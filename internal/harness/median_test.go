package harness

import (
	"testing"
	"time"

	"rtle/internal/core"
)

// fakeResult builds a Result with the given throughput in ops/ms.
func fakeResult(opsPerMs uint64) *Result {
	return &Result{
		Elapsed: time.Millisecond,
		Total:   core.Stats{Ops: opsPerMs},
	}
}

// feed returns a run function yielding the given results in order.
func feed(t *testing.T, rs ...*Result) func() *Result {
	i := 0
	return func() *Result {
		if i >= len(rs) {
			t.Fatal("Median ran the experiment more times than n")
		}
		r := rs[i]
		i++
		return r
	}
}

func TestMedianOdd(t *testing.T) {
	got := Median(5, feed(t, fakeResult(50), fakeResult(10), fakeResult(30), fakeResult(40), fakeResult(20)))
	if got.Throughput() != 30 {
		t.Errorf("median of {10..50} = %v ops/ms, want 30", got.Throughput())
	}
}

// TestMedianEven is the regression test for the even-n case: Median used
// to return results[n/2] unconditionally — the *upper* of the two central
// runs — overstating the median of every even-length sample. The two
// central runs are by construction equidistant from their mean, so the
// closest-to-median rule resolves to the slower central run.
func TestMedianEven(t *testing.T) {
	cases := []struct {
		name string
		runs []uint64
		want uint64
	}{
		// Central pair {20, 100}, median value 60: equidistant, so the
		// tie rule picks the slower run — the old code returned 100.
		{"wide central pair", []uint64{10, 20, 100, 110}, 20},
		// Central pair {50, 52}, median value 51.
		{"adjacent pair", []uint64{1, 50, 52, 99}, 50},
		{"n=2", []uint64{30, 90}, 30},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rs := make([]*Result, len(c.runs))
			for i, ops := range c.runs {
				rs[i] = fakeResult(ops)
			}
			got := Median(len(rs), feed(t, rs...))
			if uint64(got.Throughput()) != c.want {
				t.Errorf("Median(%v) = %v ops/ms, want %d", c.runs, got.Throughput(), c.want)
			}
		})
	}
}

// TestMedianEvenDuplicate pins the scan rule when a non-central run ties
// the central pair in throughput: any run at the median value is a valid
// representative.
func TestMedianEvenDuplicate(t *testing.T) {
	got := Median(4, feed(t, fakeResult(40), fakeResult(40), fakeResult(40), fakeResult(200)))
	if got.Throughput() != 40 {
		t.Errorf("Median picked %v ops/ms, want 40", got.Throughput())
	}
}

func TestMedianNonPositiveN(t *testing.T) {
	got := Median(0, feed(t, fakeResult(7)))
	if got.Throughput() != 7 {
		t.Errorf("Median(0) should run once, got %v", got.Throughput())
	}
}
