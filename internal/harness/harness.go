// Package harness drives multi-threaded experiments over core.Methods and
// computes the derived statistics the paper's figures plot: total
// throughput and speedup (Fig. 5), slow-path throughput (Figs. 6, 8), time
// under lock (Fig. 7), execution-type distributions (Fig. 9), validation
// frequency (Fig. 10), and lock-fallback rates (§6.4.2).
//
// Experiments run either for a wall-clock duration (benchmarks) or for a
// fixed operation count per thread (tests, which must be deterministic in
// length). Every thread gets an independent seeded PRNG, threads start on
// a common barrier, and per-thread statistics are merged after the fleet
// quiesces.
package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"rtle/internal/core"
	"rtle/internal/rng"
)

// Config configures one experiment run.
type Config struct {
	// Threads is the number of worker goroutines.
	Threads int
	// Duration selects wall-clock mode when positive.
	Duration time.Duration
	// OpsPerThread selects count mode when Duration is zero.
	OpsPerThread int
	// Seed derives each thread's PRNG stream.
	Seed uint64
	// Sample, when enabled, emits periodic live-metrics rows from an
	// obs.Registry for the duration of the run (see SampleConfig).
	Sample SampleConfig
}

// Worker performs one operation of a workload using the per-thread PRNG.
type Worker func(r *rng.Xoshiro256)

// WorkerFactory builds the Worker for thread id, binding whatever
// per-thread state the workload needs (a core.Thread, data-structure
// handles, ...).
type WorkerFactory func(id int, t core.Thread) Worker

// Result holds the outcome of one experiment run.
type Result struct {
	Method    string
	Threads   int
	Elapsed   time.Duration
	Total     core.Stats
	PerThread []core.Stats
}

// Run executes the workload produced by factory over method with cfg.
func Run(method core.Method, cfg Config, factory WorkerFactory) *Result {
	n := cfg.Threads
	if n <= 0 {
		n = 1
	}
	threads := make([]core.Thread, n)
	workers := make([]Worker, n)
	for i := 0; i < n; i++ {
		threads[i] = method.NewThread()
		workers[i] = factory(i, threads[i])
	}

	var stop atomic.Bool
	startGate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(id int) {
			defer wg.Done()
			r := rng.NewXoshiro256(cfg.Seed + uint64(id)*0x9e3779b97f4a7c15 + 1)
			w := workers[id]
			<-startGate
			if cfg.Duration > 0 {
				for !stop.Load() {
					w(r)
				}
			} else {
				for k := 0; k < cfg.OpsPerThread; k++ {
					w(r)
				}
			}
		}(i)
	}

	sampler := StartSampler(cfg.Sample)
	start := time.Now()
	close(startGate)
	if cfg.Duration > 0 {
		timer := time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
		defer timer.Stop()
	}
	wg.Wait()
	elapsed := time.Since(start)
	sampler.Stop()

	res := &Result{
		Method:    method.Name(),
		Threads:   n,
		Elapsed:   elapsed,
		PerThread: make([]core.Stats, n),
	}
	for i, t := range threads {
		res.PerThread[i] = *t.Stats()
		res.Total.Merge(t.Stats())
	}
	return res
}

// --- Derived metrics --------------------------------------------------------

// Throughput returns completed operations per millisecond (the unit of the
// paper's throughput figures).
func (r *Result) Throughput() float64 {
	ms := float64(r.Elapsed.Nanoseconds()) / 1e6
	if ms <= 0 {
		return 0
	}
	return float64(r.Total.Ops) / ms
}

// Speedup normalizes throughput by a baseline run (Fig. 5 uses the
// single-threaded Lock result).
func (r *Result) Speedup(base *Result) float64 {
	bt := base.Throughput()
	if bt <= 0 {
		return 0
	}
	return r.Throughput() / bt
}

// LockHold returns the total time the lock was held, summed over threads
// (holds are exclusive, so the sum is the aggregate hold time).
func (r *Result) LockHold() time.Duration {
	return time.Duration(r.Total.LockHoldNanos)
}

// SlowHTMThroughput returns slow-path HTM commits per millisecond of
// lock-held time — the SlowHTM series of Figs. 6 and 8.
func (r *Result) SlowHTMThroughput() float64 {
	return perMilli(r.Total.SlowCommits, r.Total.LockHoldNanos)
}

// LockPathThroughput returns lock-path executions per millisecond of
// lock-held time — the Lock series of Fig. 6.
func (r *Result) LockPathThroughput() float64 {
	return perMilli(r.Total.LockRuns, r.Total.LockHoldNanos)
}

// STMThroughput returns software-transaction commits per millisecond of
// software-transaction time — the SWSlow series of Fig. 8.
func (r *Result) STMThroughput() float64 {
	commits := r.Total.STMCommitsHTM + r.Total.STMCommitsLock + r.Total.STMCommitsRO
	return perMilli(commits, r.Total.STMTimeNanos)
}

// RHNOrecSlowHTMThroughput returns, for RHNOrec, hardware commits that had
// to bump the global timestamp per millisecond of software-transaction
// time — the SlowHTM series of Fig. 8.
func (r *Result) RHNOrecSlowHTMThroughput() float64 {
	return perMilli(r.Total.SlowCommits, r.Total.STMTimeNanos)
}

func perMilli(count uint64, nanos int64) float64 {
	if nanos <= 0 {
		return 0
	}
	return float64(count) / (float64(nanos) / 1e6)
}

// RelativeTimeUnderLock normalizes aggregate lock-hold time to a baseline
// run (Fig. 7 normalizes to the Lock method at the same thread count).
func (r *Result) RelativeTimeUnderLock(base *Result) float64 {
	if base.Total.LockHoldNanos <= 0 {
		return 0
	}
	// Normalize per completed lock-path execution so runs of different
	// lengths compare.
	own := safeDiv(float64(r.Total.LockHoldNanos), float64(r.Total.LockRuns))
	b := safeDiv(float64(base.Total.LockHoldNanos), float64(base.Total.LockRuns))
	return safeDiv(own, b)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ExecFractions returns the Fig. 9 execution-type distribution: fractions
// of completed atomic blocks per path. Read-only software commits are
// folded into STMFast, matching the paper's bucketing.
type ExecFractions struct {
	HTMFast float64 // hardware, no timestamp bump / uninstrumented fast path
	HTMSlow float64 // hardware with timestamp bump / instrumented slow path
	STMFast float64 // software committed via reduced HTM (or read-only)
	STMSlow float64 // software committed under the global lock
	Lock    float64 // pessimistic lock path (TLE family)
}

// ExecTypeDistribution computes ExecFractions from the merged stats.
func (r *Result) ExecTypeDistribution() ExecFractions {
	total := float64(r.Total.TotalCommits())
	if total == 0 {
		return ExecFractions{}
	}
	return ExecFractions{
		HTMFast: float64(r.Total.FastCommits) / total,
		HTMSlow: float64(r.Total.SlowCommits) / total,
		STMFast: float64(r.Total.STMCommitsHTM+r.Total.STMCommitsRO) / total,
		STMSlow: float64(r.Total.STMCommitsLock) / total,
		Lock:    float64(r.Total.LockRuns) / total,
	}
}

// ValidationsPerTx returns value-based validations per software
// transaction attempt (Fig. 10).
func (r *Result) ValidationsPerTx() float64 {
	if r.Total.STMStarts == 0 {
		return 0
	}
	return float64(r.Total.Validations) / float64(r.Total.STMStarts)
}

// LockFallbackRate returns the fraction of atomic blocks that acquired the
// lock (§6.4.2 reports it for ccTSA).
func (r *Result) LockFallbackRate() float64 {
	if r.Total.Ops == 0 {
		return 0
	}
	return float64(r.Total.LockRuns) / float64(r.Total.Ops)
}
