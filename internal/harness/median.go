package harness

import "sort"

// Median runs an experiment n times (each invocation of run must build a
// fresh data structure and method) and returns the run with the median
// throughput. The paper reports the median of 5 runs and presents the
// auxiliary statistics from the median run (§6.2); this helper gives
// drivers the same discipline.
func Median(n int, run func() *Result) *Result {
	if n <= 0 {
		n = 1
	}
	results := make([]*Result, n)
	for i := range results {
		results[i] = run()
	}
	sort.Slice(results, func(i, j int) bool {
		return results[i].Throughput() < results[j].Throughput()
	})
	return results[n/2]
}
