package harness

import "sort"

// Median runs an experiment n times (each invocation of run must build a
// fresh data structure and method) and returns the run with the median
// throughput. The paper reports the median of 5 runs and presents the
// auxiliary statistics from the median run (§6.2); this helper gives
// drivers the same discipline.
//
// For odd n this is the middle run. For even n there is no middle run, and
// a Result must still carry self-consistent auxiliary statistics (so the
// two central runs cannot be averaged); Median instead returns the run
// whose throughput is closest to the median value — the mean of the two
// central runs — picking the slower run when equidistant. (The previous
// behaviour, silently returning the upper-central run, overstated the
// median of every even-length sample.)
func Median(n int, run func() *Result) *Result {
	if n <= 0 {
		n = 1
	}
	results := make([]*Result, n)
	for i := range results {
		results[i] = run()
	}
	sort.Slice(results, func(i, j int) bool {
		return results[i].Throughput() < results[j].Throughput()
	})
	if n%2 == 1 {
		return results[n/2]
	}
	target := (results[n/2-1].Throughput() + results[n/2].Throughput()) / 2
	best := results[0]
	bestDist := abs(best.Throughput() - target)
	for _, r := range results[1:] {
		if d := abs(r.Throughput() - target); d < bestDist {
			best, bestDist = r, d
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
