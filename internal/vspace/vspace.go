// Package vspace implements a virtual-address-space manager over the
// transactional ordered map: the very system the paper cites to motivate
// its AVL benchmark ("the address space of each process is managed by an
// AVL tree" in OpenSolaris, §6.2, citing Clements et al. [5]).
//
// An address space is a set of non-overlapping segments [start, start+len)
// stored in an avl.Map keyed by start address with the length as the
// value. The operation mix is the classic motivation for lock elision on
// this structure: page-fault handling performs a read-only floor lookup
// (the overwhelmingly common case), while mmap/munmap mutate — so
// RW-TLE's read-only slow path and FG-TLE's fine-grained orecs map
// directly onto the workload.
package vspace

import (
	"fmt"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/mem"
)

// Space is a virtual address space: non-overlapping segments in an
// ordered map.
type Space struct {
	mp *avl.Map
	// Limit is the exclusive upper bound of the address space.
	Limit uint64
}

// New allocates an empty address space on m with the given limit.
func New(m *mem.Memory, limit uint64) *Space {
	return &Space{mp: avl.NewMap(m), Limit: limit}
}

// Handle is the per-thread access handle.
type Handle struct {
	s *Space
	h *avl.MapHandle
}

// NewHandle returns a fresh per-thread handle.
func (s *Space) NewHandle() *Handle {
	return &Handle{s: s, h: s.mp.NewHandle()}
}

// MapFixedCS maps [start, start+length) if the range is valid and free,
// reporting success. It must run inside an atomic block.
func (h *Handle) MapFixedCS(c core.Context, start, length uint64) bool {
	if length == 0 || start >= h.s.Limit || h.s.Limit-start < length {
		return false
	}
	// The previous segment must end at or before start...
	if k, l, ok := h.h.FloorCS(c, start); ok && k+l > start {
		return false
	}
	// ...and the next segment must begin at or after start+length.
	if k, _, ok := h.h.CeilingCS(c, start+1); ok && k < start+length {
		return false
	}
	h.h.PutCS(c, start, length)
	return true
}

// UnmapCS removes the segment starting exactly at start, reporting whether
// one existed. (Real munmap can split segments; fixed-grain unmap keeps
// the critical section shaped like the paper's Remove.)
func (h *Handle) UnmapCS(c core.Context, start uint64) bool {
	return h.h.RemoveCS(c, start)
}

// LookupCS resolves addr to its containing segment, the page-fault path:
// a floor search plus a bounds check, touching O(log n) nodes, read-only.
func (h *Handle) LookupCS(c core.Context, addr uint64) (start, length uint64, ok bool) {
	k, l, found := h.h.FloorCS(c, addr)
	if !found || addr >= k+l {
		return 0, 0, false
	}
	return k, l, true
}

// AfterMap finalizes handle bookkeeping after a committed atomic block
// that called MapFixedCS (callers composing CS bodies themselves must
// call it, like avl's AfterInsert).
func (h *Handle) AfterMap(mapped bool) { h.h.AfterPut(mapped) }

// AfterUnmap is AfterMap's counterpart for UnmapCS.
func (h *Handle) AfterUnmap(unmapped bool) { h.h.AfterRemove(unmapped) }

// --- Atomic wrappers ---------------------------------------------------------

// MapFixed runs MapFixedCS atomically on t, with handle bookkeeping.
func (h *Handle) MapFixed(t core.Thread, start, length uint64) bool {
	var ok bool
	t.Atomic(func(c core.Context) { ok = h.MapFixedCS(c, start, length) })
	h.AfterMap(ok)
	return ok
}

// Unmap runs UnmapCS atomically on t, with handle bookkeeping.
func (h *Handle) Unmap(t core.Thread, start uint64) bool {
	var ok bool
	t.Atomic(func(c core.Context) { ok = h.UnmapCS(c, start) })
	h.AfterUnmap(ok)
	return ok
}

// Lookup runs LookupCS atomically on t.
func (h *Handle) Lookup(t core.Thread, addr uint64) (uint64, uint64, bool) {
	var start, length uint64
	var ok bool
	t.Atomic(func(c core.Context) { start, length, ok = h.LookupCS(c, addr) })
	return start, length, ok
}

// --- Whole-space helpers (quiescent use) --------------------------------------

// Segments returns all (start, length) pairs in address order via c.
func (s *Space) Segments(c core.Context) (starts, lengths []uint64) {
	return s.mp.Entries(c)
}

// CheckInvariants verifies the tree structure and that no two segments
// overlap and none exceeds the limit.
func (s *Space) CheckInvariants(c core.Context) error {
	if err := s.mp.CheckInvariants(c); err != nil {
		return err
	}
	starts, lengths := s.mp.Entries(c)
	var prevEnd uint64
	for i := range starts {
		if lengths[i] == 0 {
			return fmt.Errorf("vspace: zero-length segment at %#x", starts[i])
		}
		if starts[i] < prevEnd {
			return fmt.Errorf("vspace: segment %#x overlaps previous end %#x", starts[i], prevEnd)
		}
		end := starts[i] + lengths[i]
		if end > s.Limit || end < starts[i] {
			return fmt.Errorf("vspace: segment [%#x, %#x) exceeds limit %#x", starts[i], end, s.Limit)
		}
		prevEnd = end
	}
	return nil
}

// MappedBytes sums segment lengths via c.
func (s *Space) MappedBytes(c core.Context) uint64 {
	_, lengths := s.mp.Entries(c)
	var total uint64
	for _, l := range lengths {
		total += l
	}
	return total
}
