package vspace

import (
	"sync"
	"testing"
	"testing/quick"

	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

func newSpace(limit uint64) (*Space, *Handle, core.Context) {
	m := mem.New(1 << 20)
	s := New(m, limit)
	return s, s.NewHandle(), core.Direct(m)
}

func TestMapFixedAndLookup(t *testing.T) {
	s, h, c := newSpace(1 << 20)
	if !h.MapFixedCS(c, 0x1000, 0x2000) {
		t.Fatal("mapping into empty space failed")
	}
	h.h.AfterPut(true)
	for _, addr := range []uint64{0x1000, 0x1fff, 0x2fff} {
		start, length, ok := h.LookupCS(c, addr)
		if !ok || start != 0x1000 || length != 0x2000 {
			t.Fatalf("Lookup(%#x) = %#x,%#x,%v", addr, start, length, ok)
		}
	}
	for _, addr := range []uint64{0xfff, 0x3000, 0} {
		if _, _, ok := h.LookupCS(c, addr); ok {
			t.Fatalf("Lookup(%#x) found a segment outside any mapping", addr)
		}
	}
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

func TestMapFixedRejectsOverlap(t *testing.T) {
	s, h, c := newSpace(1 << 20)
	h.MapFixedCS(c, 0x2000, 0x1000) // [0x2000, 0x3000)
	h.h.AfterPut(true)
	cases := []struct {
		start, length uint64
		why           string
	}{
		{0x2000, 0x1000, "identical"},
		{0x1800, 0x1000, "overlaps from below"},
		{0x2800, 0x1000, "overlaps from above"},
		{0x2400, 0x100, "contained"},
		{0x1000, 0x3000, "contains"},
	}
	for _, tc := range cases {
		if h.MapFixedCS(c, tc.start, tc.length) {
			t.Errorf("mapping %s succeeded: [%#x, +%#x)", tc.why, tc.start, tc.length)
		}
	}
	// Adjacent mappings must succeed (half-open ranges).
	if !h.MapFixedCS(c, 0x1000, 0x1000) {
		t.Error("mapping adjacent below failed")
	}
	h.h.AfterPut(true)
	if !h.MapFixedCS(c, 0x3000, 0x1000) {
		t.Error("mapping adjacent above failed")
	}
	h.h.AfterPut(true)
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

func TestMapFixedRejectsBadRanges(t *testing.T) {
	s, h, c := newSpace(0x10000)
	if h.MapFixedCS(c, 0x1000, 0) {
		t.Error("zero-length mapping succeeded")
	}
	if h.MapFixedCS(c, 0x10000, 0x1000) {
		t.Error("mapping at the limit succeeded")
	}
	if h.MapFixedCS(c, 0xF000, 0x2000) {
		t.Error("mapping across the limit succeeded")
	}
	if h.MapFixedCS(c, ^uint64(0)-10, 100) {
		t.Error("address-overflowing mapping succeeded")
	}
	_ = s
}

func TestUnmap(t *testing.T) {
	s, h, c := newSpace(1 << 20)
	h.MapFixedCS(c, 0x1000, 0x1000)
	h.h.AfterPut(true)
	if !h.UnmapCS(c, 0x1000) {
		t.Fatal("unmap of mapped segment failed")
	}
	h.h.AfterRemove(true)
	if h.UnmapCS(c, 0x1000) {
		t.Fatal("double unmap succeeded")
	}
	if _, _, ok := h.LookupCS(c, 0x1800); ok {
		t.Fatal("lookup found an unmapped segment")
	}
	if s.MappedBytes(c) != 0 {
		t.Fatal("mapped bytes nonzero after unmap")
	}
}

func TestQuickRandomMapUnmapNoOverlap(t *testing.T) {
	s, h, c := newSpace(1 << 16)
	f := func(start16, len16 uint16, unmap bool) bool {
		start := uint64(start16)
		length := uint64(len16%512) + 1
		if unmap {
			h.UnmapCS(c, start)
			h.h.AfterRemove(true)
		} else {
			ok := h.MapFixedCS(c, start, length)
			h.h.AfterPut(ok)
		}
		return s.CheckInvariants(c) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAddressSpace drives the mmap/pagefault/munmap mix through
// elision methods, including HTM-unfriendly mmaps that hold the lock, and
// checks the no-overlap invariant plus exact byte accounting afterwards.
func TestConcurrentAddressSpace(t *testing.T) {
	for _, name := range []string{"TLE", "RW-TLE", "FG-TLE(256)"} {
		t.Run(name, func(t *testing.T) {
			m := mem.New(1 << 22)
			var meth core.Method
			switch name {
			case "TLE":
				meth = core.NewTLE(m, core.Policy{})
			case "RW-TLE":
				meth = core.NewRWTLE(m, core.Policy{})
			default:
				meth = core.NewFGTLE(m, 256, core.Policy{})
			}
			s := New(m, 1<<24)
			const goroutines = 4
			const perG = 400
			const slots = 64
			const slotSize = 1 << 12
			mapped := make([][]int64, goroutines) // net bytes mapped per slot
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				mapped[g] = make([]int64, slots)
				th := meth.NewThread()
				go func(id int, th core.Thread) {
					defer wg.Done()
					h := s.NewHandle()
					r := rng.NewXoshiro256(uint64(id) + 29)
					for i := 0; i < perG; i++ {
						slot := r.Uint64n(slots)
						start := slot * 4 * slotSize // spaced slots
						unfriendly := r.Intn(15) == 0
						switch r.Intn(10) {
						case 0, 1:
							var ok bool
							th.Atomic(func(c core.Context) {
								if unfriendly {
									c.Unsupported()
								}
								ok = h.MapFixedCS(c, start, slotSize)
							})
							h.h.AfterPut(ok)
							if ok {
								mapped[id][slot] += slotSize
							}
						case 2:
							var ok bool
							th.Atomic(func(c core.Context) {
								if unfriendly {
									c.Unsupported()
								}
								ok = h.UnmapCS(c, start)
							})
							h.h.AfterRemove(ok)
							if ok {
								mapped[id][slot] -= slotSize
							}
						default:
							// Page fault: lookup a random address.
							h.Lookup(th, r.Uint64n(1<<24))
						}
					}
				}(g, th)
			}
			wg.Wait()
			dc := core.Direct(m)
			if err := s.CheckInvariants(dc); err != nil {
				t.Fatalf("%s broke the address space: %v", name, err)
			}
			var want int64
			for g := range mapped {
				for _, b := range mapped[g] {
					want += b
				}
			}
			if got := int64(s.MappedBytes(dc)); got != want {
				t.Fatalf("%s: mapped bytes %d, want %d — mmap accounting violated", name, got, want)
			}
		})
	}
}
