package vspace_test

import (
	"fmt"

	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/vspace"
)

// Example demonstrates the address-space manager: fixed mappings, the
// page-fault lookup path, and overlap rejection.
func Example() {
	m := mem.New(1 << 20)
	method := core.NewRWTLE(m, core.Policy{})
	space := vspace.New(m, 1<<32)

	th := method.NewThread()
	h := space.NewHandle()

	fmt.Println(h.MapFixed(th, 0x400000, 0x10000)) // text segment
	fmt.Println(h.MapFixed(th, 0x408000, 0x1000))  // overlaps: rejected

	start, length, ok := h.Lookup(th, 0x400abc) // page fault
	fmt.Printf("%#x %#x %v\n", start, length, ok)

	fmt.Println(h.Unmap(th, 0x400000))
	_, _, ok = h.Lookup(th, 0x400abc)
	fmt.Println(ok)
	// Output:
	// true
	// false
	// 0x400000 0x10000 true
	// true
	// false
}
