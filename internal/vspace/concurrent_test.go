package vspace

import (
	"sync"
	"sync/atomic"
	"testing"

	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

// TestConcurrentOverlapRaces drives MapFixed/Unmap/Lookup from several
// goroutines at deliberately overlapping ranges — the case the spaced-slot
// stress test never exercises. The accounting invariant: a MapFixed at
// start s succeeds only while no overlapping segment exists, and Unmap(s)
// removes exactly the segment keyed s, so for every candidate start the
// net successful (maps - unmaps) must equal its final presence in the
// space; and no two surviving segments may overlap (CheckInvariants).
// Run under -race this also checks that handle scratch state and the
// method's speculation machinery stay data-race-free at full contention.
func TestConcurrentOverlapRaces(t *testing.T) {
	methods := []struct {
		name  string
		build func(m *mem.Memory) core.Method
	}{
		{"TLE", func(m *mem.Memory) core.Method { return core.NewTLE(m, core.Policy{}) }},
		{"RW-TLE", func(m *mem.Memory) core.Method { return core.NewRWTLE(m, core.Policy{}) }},
		{"FG-TLE(256)", func(m *mem.Memory) core.Method { return core.NewFGTLE(m, 256, core.Policy{}) }},
	}
	for _, tc := range methods {
		t.Run(tc.name, func(t *testing.T) {
			m := mem.New(1 << 22)
			meth := tc.build(m)
			s := New(m, 1<<24)

			// windows overlapping start candidates: window w holds starts
			// w*page*4 + {0, page/2, page}; mapping length page makes
			// neighboring candidates inside one window mutually exclusive.
			const (
				windows    = 8
				page       = uint64(1 << 12)
				candidates = windows * 3
				goroutines = 4
				perG       = 300
			)
			startOf := func(i int) uint64 {
				w, off := uint64(i/3), uint64(i%3)
				return w*page*4 + off*page/2
			}
			var net [candidates]atomic.Int64 // successful maps - unmaps

			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				th := meth.NewThread()
				go func(id int, th core.Thread) {
					defer wg.Done()
					h := s.NewHandle()
					r := rng.NewXoshiro256(uint64(id)*0x9e3779b97f4a7c15 + 11)
					for i := 0; i < perG; i++ {
						c := int(r.Uint64n(candidates))
						start := startOf(c)
						switch p := r.Intn(10); {
						case p < 4:
							if h.MapFixed(th, start, page) {
								net[c].Add(1)
							}
						case p < 8:
							if h.Unmap(th, start) {
								net[c].Add(-1)
							}
						default:
							addr := start + r.Uint64n(page)
							if segStart, segLen, ok := h.Lookup(th, addr); ok {
								if addr < segStart || addr >= segStart+segLen {
									t.Errorf("lookup(%#x) returned non-containing segment [%#x,%#x)",
										addr, segStart, segStart+segLen)
									return
								}
							}
						}
					}
				}(g, th)
			}
			wg.Wait()

			d := core.Direct(m)
			if err := s.CheckInvariants(d); err != nil {
				t.Fatalf("SPACE CORRUPTED: %v", err)
			}
			starts, _ := s.Segments(d)
			present := make(map[uint64]bool, len(starts))
			for _, st := range starts {
				present[st] = true
			}
			for c := 0; c < candidates; c++ {
				want := int64(0)
				if present[startOf(c)] {
					want = 1
				}
				if got := net[c].Load(); got != want {
					t.Errorf("start %#x: net successful maps %d, presence %d — an overlap race double-counted",
						startOf(c), got, want)
				}
			}
		})
	}
}
