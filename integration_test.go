// Cross-module integration tests: every synchronization method drives
// every benchmark structure concurrently, with HTM-unfriendly operations
// keeping the pessimistic paths busy, and exact accounting checked at the
// end. These are the widest correctness nets in the repository: any
// isolation defect in a method, a barrier protocol, the HTM simulation, or
// a data structure surfaces as a broken invariant here.
package rtle_test

import (
	"sync"
	"testing"

	"rtle/internal/avl"
	"rtle/internal/bank"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/rng"
	"rtle/internal/tmap"
)

// integrationMethods is the full method matrix.
var integrationMethods = []string{
	"Lock", "TLE", "HLE", "RW-TLE",
	"FG-TLE(1)", "FG-TLE(64)", "FG-TLE(1024)",
	"FG-TLE(adaptive)", "ALE(64)", "NOrec", "RHNOrec",
}

// integrationPolicies exercises plain and virtualized/fault-injected
// configurations.
func integrationPolicies(short bool) map[string]core.Policy {
	pols := map[string]core.Policy{
		"default": {},
	}
	if !short {
		pols["contended"] = core.Policy{HTM: htm.Config{
			InterleaveEvery: 4, SpuriousProb: 0.02, SpuriousSeed: 17,
		}}
	}
	return pols
}

func TestIntegrationSetAllMethods(t *testing.T) {
	const keyRange = 64
	for polName, pol := range integrationPolicies(testing.Short()) {
		for _, name := range integrationMethods {
			t.Run(polName+"/"+name, func(t *testing.T) {
				m := mem.New(1 << 22)
				meth := harness.MustBuildMethod(name, m, pol)
				set := avl.New(m)
				initial := map[uint64]bool{}
				seedH := set.NewHandle()
				dc := core.Direct(m)
				for k := uint64(0); k < keyRange; k += 2 {
					seedH.InsertCS(dc, k)
					seedH.AfterInsert(true)
					initial[k] = true
				}

				const goroutines = 4
				const perG = 350
				deltas := make([][]int64, goroutines)
				var wg sync.WaitGroup
				wg.Add(goroutines)
				for g := 0; g < goroutines; g++ {
					deltas[g] = make([]int64, keyRange)
					th := meth.NewThread()
					go func(id int, th core.Thread) {
						defer wg.Done()
						h := set.NewHandle()
						r := rng.NewXoshiro256(uint64(id) + 1)
						for i := 0; i < perG; i++ {
							key := r.Uint64n(keyRange)
							unfriendly := r.Intn(12) == 0
							switch r.Intn(4) {
							case 0:
								var res bool
								th.Atomic(func(c core.Context) {
									if unfriendly {
										c.Unsupported()
									}
									res = h.InsertCS(c, key)
								})
								h.AfterInsert(res)
								if res {
									deltas[id][key]++
								}
							case 1:
								var res bool
								th.Atomic(func(c core.Context) {
									if unfriendly {
										c.Unsupported()
									}
									res = h.RemoveCS(c, key)
								})
								h.AfterRemove(res)
								if res {
									deltas[id][key]--
								}
							default:
								h.Contains(th, key)
							}
						}
					}(g, th)
				}
				wg.Wait()

				if err := set.CheckInvariants(dc); err != nil {
					t.Fatalf("%s corrupted the tree: %v", name, err)
				}
				final := map[uint64]bool{}
				for _, k := range set.Keys(dc) {
					final[k] = true
				}
				for k := uint64(0); k < keyRange; k++ {
					var net int64
					for g := range deltas {
						net += deltas[g][k]
					}
					if b2i(final[k])-b2i(initial[k]) != net {
						t.Errorf("%s key %d: initial %v final %v net %d", name, k, initial[k], final[k], net)
					}
				}
			})
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func TestIntegrationBankAllMethods(t *testing.T) {
	const accounts = 24
	const initial = 500
	for polName, pol := range integrationPolicies(testing.Short()) {
		for _, name := range integrationMethods {
			t.Run(polName+"/"+name, func(t *testing.T) {
				m := mem.New(1 << 20)
				meth := harness.MustBuildMethod(name, m, pol)
				b := bank.New(m, accounts, initial)
				const goroutines = 4
				const perG = 350
				var wg sync.WaitGroup
				wg.Add(goroutines)
				for g := 0; g < goroutines; g++ {
					th := meth.NewThread()
					go func(id int, th core.Thread) {
						defer wg.Done()
						r := rng.NewXoshiro256(uint64(id) + 7)
						for i := 0; i < perG; i++ {
							from := r.Intn(accounts)
							to := r.Intn(accounts - 1)
							if to >= from {
								to++
							}
							amount := r.Uint64n(20) + 1
							unfriendly := r.Intn(12) == 0
							th.Atomic(func(c core.Context) {
								if unfriendly {
									c.Unsupported()
								}
								b.TransferCS(c, from, to, amount)
							})
						}
					}(g, th)
				}
				wg.Wait()
				if err := b.CheckConservation(core.Direct(m), accounts*initial); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			})
		}
	}
}

func TestIntegrationMapAllMethods(t *testing.T) {
	const keyRange = 48
	for polName, pol := range integrationPolicies(testing.Short()) {
		for _, name := range integrationMethods {
			t.Run(polName+"/"+name, func(t *testing.T) {
				m := mem.New(1 << 22)
				meth := harness.MustBuildMethod(name, m, pol)
				mp := tmap.New(m, 32)
				const goroutines = 4
				const perG = 350
				var wg sync.WaitGroup
				wg.Add(goroutines)
				for g := 0; g < goroutines; g++ {
					th := meth.NewThread()
					go func(id int, th core.Thread) {
						defer wg.Done()
						h := mp.NewHandle()
						r := rng.NewXoshiro256(uint64(id) + 3)
						for i := 0; i < perG; i++ {
							key := r.Uint64n(keyRange) + 1
							unfriendly := r.Intn(12) == 0
							th.Atomic(func(c core.Context) {
								if unfriendly {
									c.Unsupported()
								}
								h.AddCS(c, key, 1)
							})
							if h.UsedSpare() {
								h.ConsumeSpare()
							}
						}
					}(g, th)
				}
				wg.Wait()
				var total uint64
				mp.ForEach(core.Direct(m), func(_, v uint64) bool { total += v; return true })
				if total != goroutines*perG {
					t.Fatalf("%s lost increments: %d, want %d", name, total, goroutines*perG)
				}
			})
		}
	}
}

// TestIntegrationSoak is a longer randomized shake-out, skipped in -short
// runs: all structures share one heap and one method, with mixed traffic.
func TestIntegrationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	m := mem.New(1 << 23)
	pol := core.Policy{HTM: htm.Config{InterleaveEvery: 8, SpuriousProb: 0.005, SpuriousSeed: 23}}
	meth := core.NewFGTLE(m, 512, pol)
	set := avl.New(m)
	b := bank.New(m, 16, 1000)
	mp := tmap.New(m, 64)

	const goroutines = 6
	const perG = 2500
	deltas := make([][]int64, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		deltas[g] = make([]int64, 64)
		th := meth.NewThread()
		go func(id int, th core.Thread) {
			defer wg.Done()
			hs := set.NewHandle()
			hm := mp.NewHandle()
			r := rng.NewXoshiro256(uint64(id) + 51)
			for i := 0; i < perG; i++ {
				switch r.Intn(6) {
				case 0:
					key := r.Uint64n(64)
					if hs.Insert(th, key) {
						deltas[id][key]++
					}
				case 1:
					key := r.Uint64n(64)
					if hs.Remove(th, key) {
						deltas[id][key]--
					}
				case 2:
					hs.Contains(th, r.Uint64n(64))
				case 3:
					from := r.Intn(16)
					to := (from + 1 + r.Intn(15)) % 16
					b.Transfer(th, from, to, r.Uint64n(10)+1)
				case 4:
					hm.Add(th, r.Uint64n(32)+1, 1)
				default:
					th.Atomic(func(c core.Context) {
						c.Unsupported()
						hs.FindCS(c, r.Uint64n(64))
					})
				}
			}
		}(g, th)
	}
	wg.Wait()

	dc := core.Direct(m)
	if err := set.CheckInvariants(dc); err != nil {
		t.Fatalf("soak corrupted the tree: %v", err)
	}
	if err := b.CheckConservation(dc, 16*1000); err != nil {
		t.Fatalf("soak violated conservation: %v", err)
	}
	final := map[uint64]bool{}
	for _, k := range set.Keys(dc) {
		final[k] = true
	}
	for k := uint64(0); k < 64; k++ {
		var net int64
		for g := range deltas {
			net += deltas[g][k]
		}
		if b2i(final[k]) != net {
			t.Errorf("soak key %d: net %d, final %v", k, net, final[k])
		}
	}
}
