// Tests for the public rtle API surface.
package rtle_test

import (
	"strings"
	"sync"
	"testing"

	"rtle"
)

// TestNewAllAlgorithms constructs every algorithm through the public
// constructor and runs a small concurrent counter workload against it.
func TestNewAllAlgorithms(t *testing.T) {
	algs := []rtle.Algorithm{
		rtle.Lock, rtle.TLE, rtle.HLE, rtle.RWTLE, rtle.FGTLE,
		rtle.AdaptiveFGTLE, rtle.ALE, rtle.NOrec, rtle.RHNOrec,
	}
	for _, alg := range algs {
		t.Run(alg.String(), func(t *testing.T) {
			opts := []rtle.Option{rtle.WithMemoryWords(1 << 16)}
			switch alg {
			case rtle.Lock, rtle.HLE, rtle.NOrec:
				// No attempt loop; WithAttempts would be rejected.
			default:
				opts = append(opts, rtle.WithAttempts(3))
			}
			tm, err := rtle.New(alg, opts...)
			if err != nil {
				t.Fatal(err)
			}
			m := tm.Memory()
			counter := m.AllocLines(1)

			const goroutines, opsEach = 4, 500
			var wg sync.WaitGroup
			wg.Add(goroutines)
			threads := make([]rtle.Thread, goroutines)
			for g := 0; g < goroutines; g++ {
				threads[g] = tm.NewThread()
			}
			for g := 0; g < goroutines; g++ {
				go func(th rtle.Thread) {
					defer wg.Done()
					for i := 0; i < opsEach; i++ {
						th.Atomic(func(c rtle.Context) {
							c.Write(counter, c.Read(counter)+1)
						})
					}
				}(threads[g])
			}
			wg.Wait()

			if got := m.Load(counter); got != goroutines*opsEach {
				t.Fatalf("counter = %d, want %d", got, goroutines*opsEach)
			}
			var total rtle.Stats
			for _, th := range threads {
				total.Merge(th.Stats())
			}
			if total.Ops != goroutines*opsEach {
				t.Fatalf("stats report %d ops, want %d", total.Ops, goroutines*opsEach)
			}
		})
	}
}

// TestNewOptionValidation covers every Algorithm × option pair: options
// an algorithm consumes are accepted, options it would silently ignore
// are rejected with a descriptive error.
func TestNewOptionValidation(t *testing.T) {
	algs := []rtle.Algorithm{
		rtle.Lock, rtle.TLE, rtle.HLE, rtle.RWTLE, rtle.FGTLE,
		rtle.AdaptiveFGTLE, rtle.ALE, rtle.NOrec, rtle.RHNOrec,
	}
	all := func() map[rtle.Algorithm]bool {
		m := map[rtle.Algorithm]bool{}
		for _, a := range algs {
			m[a] = true
		}
		return m
	}
	only := func(as ...rtle.Algorithm) map[rtle.Algorithm]bool {
		m := map[rtle.Algorithm]bool{}
		for _, a := range as {
			m[a] = true
		}
		return m
	}
	shared := rtle.NewMemory(1 << 18)
	cases := []struct {
		name  string
		opt   rtle.Option
		valid map[rtle.Algorithm]bool
	}{
		{"WithMemory", rtle.WithMemory(shared), all()},
		{"WithMemoryWords", rtle.WithMemoryWords(1 << 16), all()},
		{"WithObserver", rtle.WithObserver(rtle.NewRegistry()), all()},
		{"WithHTM", rtle.WithHTM(rtle.HTMConfig{InterleaveEvery: 2}), all()},
		{"WithInterleave", rtle.WithInterleave(2), all()},
		{"WithAttempts", rtle.WithAttempts(3),
			only(rtle.TLE, rtle.RWTLE, rtle.FGTLE, rtle.AdaptiveFGTLE, rtle.ALE, rtle.RHNOrec)},
		{"WithAdaptiveAttempts", rtle.WithAdaptiveAttempts(),
			only(rtle.TLE, rtle.RWTLE, rtle.FGTLE, rtle.AdaptiveFGTLE, rtle.ALE)},
		{"WithLazySubscription", rtle.WithLazySubscription(),
			only(rtle.RWTLE, rtle.FGTLE, rtle.AdaptiveFGTLE)},
		{"WithOrecs", rtle.WithOrecs(64), only(rtle.FGTLE, rtle.ALE)},
		{"WithAdaptive", rtle.WithAdaptive(rtle.AdaptiveConfig{MinOrecs: 1, MaxOrecs: 64}),
			only(rtle.AdaptiveFGTLE)},
	}
	for _, tc := range cases {
		for _, alg := range algs {
			t.Run(tc.name+"/"+alg.String(), func(t *testing.T) {
				_, err := rtle.New(alg, rtle.WithMemoryWords(1<<16), tc.opt)
				if tc.valid[alg] && err != nil {
					t.Fatalf("New(%v, %s) rejected a valid option: %v", alg, tc.name, err)
				}
				if !tc.valid[alg] {
					if err == nil {
						t.Fatalf("New(%v, %s) accepted an option %v ignores", alg, tc.name, alg)
					}
					if !strings.Contains(err.Error(), tc.name) {
						t.Fatalf("error %q does not name the offending option %s", err, tc.name)
					}
				}
			})
		}
	}
}

// TestNewValidation checks that New reports configuration errors instead
// of panicking.
func TestNewValidation(t *testing.T) {
	if _, err := rtle.New(rtle.FGTLE, rtle.WithOrecs(3)); err == nil {
		t.Error("New accepted a non-power-of-two orec count")
	}
	if _, err := rtle.New(rtle.ALE, rtle.WithOrecs(0)); err == nil {
		t.Error("New accepted a zero orec count")
	}
	if _, err := rtle.New(rtle.Algorithm(99)); err == nil {
		t.Error("New accepted an unknown algorithm")
	}
	if _, err := rtle.New(rtle.TLE, rtle.WithMemoryWords(-1)); err == nil {
		t.Error("New accepted a negative memory size")
	}
}

// TestWithMemorySharing checks that two methods can share one heap.
func TestWithMemorySharing(t *testing.T) {
	m := rtle.NewMemory(1 << 16)
	tm1 := rtle.MustNew(rtle.TLE, rtle.WithMemory(m))
	tm2 := rtle.MustNew(rtle.RWTLE, rtle.WithMemory(m))
	if tm1.Memory() != m || tm2.Memory() != m {
		t.Fatal("WithMemory did not share the heap")
	}
	a := m.AllocLines(1)
	th := tm1.NewThread()
	th.Atomic(func(c rtle.Context) { c.Write(a, 7) })
	th2 := tm2.NewThread()
	var got uint64
	th2.Atomic(func(c rtle.Context) { got = c.Read(a) })
	if got != 7 {
		t.Fatalf("read %d through second method, want 7", got)
	}
}

// TestWithObserver checks the registry wiring end to end through the
// public API: live snapshots agree with the quiescent stats.
func TestWithObserver(t *testing.T) {
	reg := rtle.NewRegistry()
	tm := rtle.MustNew(rtle.FGTLE,
		rtle.WithMemoryWords(1<<16),
		rtle.WithOrecs(64),
		rtle.WithObserver(reg))
	counter := tm.Memory().AllocLines(1)
	th := tm.NewThread()
	for i := 0; i < 100; i++ {
		th.Atomic(func(c rtle.Context) {
			c.Write(counter, c.Read(counter)+1)
		})
	}
	snap := reg.Snapshot()
	if snap.Stats != *th.Stats() {
		t.Errorf("snapshot %+v != thread stats %+v", snap.Stats, *th.Stats())
	}
	if snap.Stats.Ops != 100 {
		t.Errorf("observed %d ops, want 100", snap.Stats.Ops)
	}
	if snap.Latency[rtle.PathFast].Count+snap.Latency[rtle.PathSlow].Count+
		snap.Latency[rtle.PathLock].Count+snap.Latency[rtle.PathSTM].Count != 100 {
		t.Error("latency histograms do not cover all ops")
	}
}

// TestAdaptiveMethodAssert checks the documented type-assertion route to
// algorithm-specific probes.
func TestAdaptiveMethodAssert(t *testing.T) {
	tm := rtle.MustNew(rtle.AdaptiveFGTLE, rtle.WithMemoryWords(1<<16),
		rtle.WithAdaptive(rtle.AdaptiveConfig{MinOrecs: 1, MaxOrecs: 64}))
	meth, ok := tm.Method().(*rtle.AdaptiveMethod)
	if !ok {
		t.Fatalf("Method() is %T, want *rtle.AdaptiveMethod", tm.Method())
	}
	if meth.CurrentOrecs() != 64 {
		t.Errorf("CurrentOrecs = %d, want the MaxOrecs start of 64", meth.CurrentOrecs())
	}
}

// TestAlgorithmString pins the evaluation-legend names.
func TestAlgorithmString(t *testing.T) {
	want := map[rtle.Algorithm]string{
		rtle.Lock: "Lock", rtle.TLE: "TLE", rtle.HLE: "HLE",
		rtle.RWTLE: "RW-TLE", rtle.FGTLE: "FG-TLE",
		rtle.AdaptiveFGTLE: "FG-TLE(adaptive)", rtle.ALE: "ALE",
		rtle.NOrec: "NOrec", rtle.RHNOrec: "RHNOrec",
	}
	for alg, name := range want {
		if alg.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(alg), alg.String(), name)
		}
	}
	if !strings.HasPrefix(rtle.Algorithm(42).String(), "Algorithm(") {
		t.Errorf("unknown algorithm String() = %q", rtle.Algorithm(42).String())
	}
}

// TestTMName checks names flow through from the constructed methods.
func TestTMName(t *testing.T) {
	if got := rtle.MustNew(rtle.FGTLE, rtle.WithMemoryWords(1<<14), rtle.WithOrecs(128)).Name(); got != "FG-TLE(128)" {
		t.Errorf("Name() = %q, want FG-TLE(128)", got)
	}
}
