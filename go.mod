module rtle

go 1.23
