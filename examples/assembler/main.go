// assembler reproduces the paper's §6.4 application study as a runnable
// example: it generates a synthetic genome, samples 36-bp reads at the
// requested coverage, and assembles them twice — with the original-style
// fine-grained-locking k-mer table and with the transactified single-table
// variant under an elided lock — printing phase times and assembly quality
// for both.
//
// Run with: go run ./examples/assembler [-threads 4] [-genome 40000] [-method "FG-TLE(1024)"]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"rtle"
	"rtle/internal/cctsa"
	"rtle/internal/harness"
)

func main() {
	threads := flag.Int("threads", 4, "worker threads")
	genomeLen := flag.Int("genome", 40000, "synthetic genome length (bp)")
	coverage := flag.Float64("coverage", 8, "read coverage")
	errRate := flag.Float64("errors", 0, "per-base sequencing error rate")
	methodName := flag.String("method", "FG-TLE(1024)", "synchronization method for the transactified variant")
	flag.Parse()

	cfg := cctsa.Config{
		GenomeLen: *genomeLen,
		Coverage:  *coverage,
		ErrorRate: *errRate,
		Threads:   *threads,
		Seed:      42,
	}
	if *errRate > 0 {
		cfg.MinCount = 2
	}
	in := cctsa.Prepare(cfg)
	fmt.Printf("genome %d bp, %d reads of %d bp (k=%d, %d threads)\n\n",
		len(in.Genome), len(in.Reads), cfg.ReadLen, 27, *threads)

	orig := in.RunOriginal()
	report(in, orig)

	tx := in.RunTransactified(func(m *rtle.Memory) rtle.Method {
		return harness.MustBuildMethod(*methodName, m, rtle.Policy{})
	})
	report(in, tx)

	st := tx.Stats
	fmt.Printf("transactified sync: %d atomic blocks — %d fast HTM, %d slow HTM, %d lock (fallback rate %.4f%%)\n",
		st.Ops, st.FastCommits, st.SlowCommits, st.LockRuns,
		100*float64(st.LockRuns)/float64(max(st.Ops, 1)))
}

func report(in *cctsa.Input, r *cctsa.Result) {
	fmt.Printf("%-28s build %6.1fms  process %6.1fms  total %6.1fms\n",
		r.Variant,
		float64(r.BuildTime.Microseconds())/1000,
		float64(r.ProcessTime.Microseconds())/1000,
		float64(r.Total.Microseconds())/1000)
	fmt.Printf("%-28s %d distinct k-mers, %d contigs, longest %d bp, %d bp total\n",
		"", r.DistinctKmers, len(r.Contigs), r.Longest, r.TotalBases)
	reconstructed := false
	for _, c := range r.Contigs {
		if bytes.Equal(c, in.Genome) {
			reconstructed = true
			break
		}
	}
	if reconstructed {
		fmt.Printf("%-28s genome reconstructed exactly as one contig\n\n", "")
	} else {
		fmt.Printf("%-28s genome split across contigs (races/errors split unitigs)\n\n", "")
	}
	if r.DistinctKmers == 0 {
		fmt.Fprintln(os.Stderr, "assembly produced no k-mers — check parameters")
		os.Exit(1)
	}
}
