// addrspace exercises the workload the paper uses to motivate its AVL
// benchmark (§6.2 cites OpenSolaris, where "the address space of each
// process is managed by an AVL tree"): a virtual-address-space manager
// handling a fault-heavy mix — page-fault lookups (read-only floor
// searches) vastly outnumbering mmap/munmap mutations — under different
// lock-elision methods, with occasional mmaps made HTM-unfriendly so a
// pessimistic thread periodically holds the lock.
//
// Run with: go run ./examples/addrspace [-threads 4] [-dur 300ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"rtle"
	"rtle/internal/harness"
	"rtle/internal/rng"
	"rtle/internal/vspace"
)

func main() {
	threads := flag.Int("threads", 4, "worker threads")
	dur := flag.Duration("dur", 300*time.Millisecond, "duration per method")
	flag.Parse()

	const limit = 1 << 30
	const slots = 512
	const slotSize = 1 << 16

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tops/ms\tfaults served\tmmaps\tslow commits\tlock runs")
	for _, spec := range []struct {
		alg  rtle.Algorithm
		opts []rtle.Option
	}{
		{rtle.Lock, nil},
		{rtle.TLE, nil},
		{rtle.RWTLE, nil},
		{rtle.FGTLE, []rtle.Option{rtle.WithOrecs(1024)}},
	} {
		m := rtle.NewMemory(1 << 24)
		s := vspace.New(m, limit)
		// Pre-map half the slots.
		setup := s.NewHandle()
		dc := rtle.Direct(m)
		for i := uint64(0); i < slots; i += 2 {
			if ok := setup.MapFixedCS(dc, i*2*slotSize, slotSize); ok {
				setup.AfterMap(ok)
			}
		}
		tm := rtle.MustNew(spec.alg, append([]rtle.Option{rtle.WithMemory(m)}, spec.opts...)...)

		var faults, mmaps atomic.Uint64
		res := harness.Run(tm.Method(), harness.Config{Threads: *threads, Duration: *dur, Seed: 5},
			func(id int, t rtle.Thread) harness.Worker {
				h := s.NewHandle()
				return func(r *rng.Xoshiro256) {
					slot := r.Uint64n(slots)
					start := slot * 2 * slotSize
					switch r.Intn(20) {
					case 0: // mmap, occasionally HTM-unfriendly
						hostile := r.Intn(4) == 0
						var ok bool
						t.Atomic(func(c rtle.Context) {
							if hostile {
								c.Unsupported()
							}
							ok = h.MapFixedCS(c, start, slotSize)
						})
						h.AfterMap(ok)
						mmaps.Add(1)
					case 1: // munmap
						h.Unmap(t, start)
					default: // page fault
						if _, _, ok := h.Lookup(t, r.Uint64n(limit)); ok {
							faults.Add(1)
						}
					}
				}
			})
		if err := s.CheckInvariants(rtle.Direct(m)); err != nil {
			fmt.Fprintf(os.Stderr, "%s corrupted the address space: %v\n", tm.Name(), err)
			os.Exit(1)
		}
		st := res.Total
		fmt.Fprintf(w, "%s\t%.0f\t%d\t%d\t%d\t%d\n",
			tm.Name(), res.Throughput(), faults.Load(), mmaps.Load(), st.SlowCommits, st.LockRuns)
	}
	w.Flush()
	fmt.Println("\npage faults are read-only lookups: under refined TLE they commit on the")
	fmt.Println("slow path while an HTM-unfriendly mmap holds the lock (slow commits column).")
}
