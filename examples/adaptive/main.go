// adaptive demonstrates the §4.2.1 adaptive FG-TLE variant live through
// the public rtle API: the orec array shrinks when critical sections use
// only a few orecs (making the lock holder's saturation optimization kick
// in sooner), grows back under workloads that saturate it, and the method
// drops to plain-TLE mode when slow-path speculation earns nothing.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"sync"

	"rtle"
	"rtle/internal/avl"
	"rtle/internal/harness"
	"rtle/internal/rng"
)

func main() {
	// Pacing (concurrency virtualization) keeps lock-holder windows open
	// long enough for slow-path commits — without them the adaptive
	// policy correctly concludes instrumentation is pure overhead and
	// just switches to TLE mode.
	tm := rtle.MustNew(rtle.AdaptiveFGTLE,
		rtle.WithMemoryWords(1<<22),
		rtle.WithInterleave(4),
		rtle.WithAdaptive(rtle.AdaptiveConfig{
			MinOrecs: 1,
			MaxOrecs: 4096,
			Window:   32,
		}))
	// The adaptive probes (orec count, mode) live on the concrete
	// method type behind the Method interface.
	meth := tm.Method().(*rtle.AdaptiveMethod)
	m := tm.Memory()
	set := avl.New(m)
	harness.SeedSet(set, 64) // a tiny set: critical sections touch few orecs

	fmt.Printf("start:               %4d orecs\n", meth.CurrentOrecs())

	// Phase 1: HTM-unfriendly updates on a tiny structure force lock-path
	// executions, and their small footprints tell the adaptation policy
	// the big orec array is wasted — while concurrent readers keep the
	// slow path productive, so the method stays in FG mode and shrinks.
	s1 := phase(tm, set, 64, 4, 2000, true)
	fmt.Printf("after small-CS load: %4d orecs (%d resizes, %d mode switches)\n",
		meth.CurrentOrecs(), s1.Resizes, s1.ModeSwitches)

	// Phase 2: a single thread — slow-path speculation earns nothing, so
	// the method starts toggling into plain-TLE mode to shed barrier
	// costs (and probes back each window).
	s2 := phase(tm, set, 64, 1, 3000, true)
	fmt.Printf("after solo period:   %4d orecs (%d resizes, %d mode switches; TLE mode now: %v)\n",
		meth.CurrentOrecs(), s2.Resizes, s2.ModeSwitches, meth.InTLEMode())

	if err := set.CheckInvariants(rtle.Direct(m)); err != nil {
		fmt.Println("INVARIANT VIOLATION:", err)
		return
	}
	fmt.Println("set invariants hold across all adaptation decisions")
}

// phase runs ops operations across threads; unfriendly updates force the
// lock path on thread 0. It returns the phase's merged statistics.
func phase(tm *rtle.TM, set *avl.Set, keyRange uint64, threads, ops int, unfriendly bool) rtle.Stats {
	var wg sync.WaitGroup
	wg.Add(threads)
	ths := make([]rtle.Thread, threads)
	for g := 0; g < threads; g++ {
		th := tm.NewThread()
		ths[g] = th
		go func(id int, th rtle.Thread) {
			defer wg.Done()
			h := set.NewHandle()
			r := rng.NewXoshiro256(uint64(id) + 7)
			for i := 0; i < ops; i++ {
				key := r.Uint64n(keyRange)
				if unfriendly && id == 0 && i%3 == 0 {
					var res bool
					th.Atomic(func(c rtle.Context) {
						c.Unsupported()
						res = h.InsertCS(c, key)
					})
					h.AfterInsert(res)
				} else if r.Intn(2) == 0 {
					h.Contains(th, key)
				} else {
					h.Remove(th, key)
				}
			}
		}(g, th)
	}
	wg.Wait()
	var total rtle.Stats
	for _, th := range ths {
		total.Merge(th.Stats())
	}
	return total
}
