// Quickstart: the smallest end-to-end use of the library through the
// public rtle API.
//
// It assembles an FG-TLE transactional-memory instance with a live-metrics
// registry attached, runs concurrent critical sections against a shared
// counter and a shared AVL set — showing how work lands on the HTM fast
// path, the instrumented slow path, or the lock — and reads the statistics
// back two ways: the quiescent per-thread counters, and a registry
// snapshot that would have been available while the workers were still
// running.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"rtle"
	"rtle/internal/avl"
	"rtle/internal/harness"
)

func main() {
	// 1. A transactional-memory instance: a simulated heap plus a
	//    synchronization method over it. Swap rtle.FGTLE for rtle.TLE,
	//    rtle.RWTLE, rtle.NOrec, ... freely — the critical-section code
	//    below does not change. The registry makes live metrics
	//    available while workers run.
	reg := rtle.NewRegistry()
	tm := rtle.MustNew(rtle.FGTLE,
		rtle.WithOrecs(256),
		rtle.WithObserver(reg))
	m := tm.Memory()

	// 2. Shared data: a counter and an AVL set, allocated on the
	//    instance's heap so the simulated HTM observes every access.
	counter := m.AllocLines(1)
	set := avl.New(m)
	harness.SeedSet(set, 1024)

	// 3. Concurrent workers. Each goroutine gets its own Thread (and
	//    per-thread data-structure handles).
	const goroutines = 4
	var wg sync.WaitGroup
	threads := make([]rtle.Thread, goroutines)
	for g := 0; g < goroutines; g++ {
		threads[g] = tm.NewThread()
	}
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(id int, th rtle.Thread) {
			defer wg.Done()
			h := set.NewHandle()
			for i := 0; i < 5000; i++ {
				key := uint64((id*5000 + i) % 1024)
				// A critical section is a function of a Context;
				// all shared accesses go through it.
				th.Atomic(func(c rtle.Context) {
					c.Write(counter, c.Read(counter)+1)
				})
				switch i % 3 {
				case 0:
					h.Insert(th, key)
				case 1:
					h.Remove(th, key)
				default:
					h.Contains(th, key)
				}
			}
		}(g, threads[g])
	}
	wg.Wait()

	// 4. Results and statistics, the quiescent way: merge per-thread
	//    counters after the workers are done.
	fmt.Printf("counter: %d (expected %d)\n", m.Load(counter), goroutines*5000)
	fmt.Printf("set size: %d\n", set.Size(rtle.Direct(m)))

	var total rtle.Stats
	for _, th := range threads {
		total.Merge(th.Stats())
	}
	fmt.Printf("atomic blocks: %d\n", total.Ops)
	fmt.Printf("  fast-path HTM commits: %d\n", total.FastCommits)
	fmt.Printf("  slow-path HTM commits (while lock held): %d\n", total.SlowCommits)
	fmt.Printf("  lock-path executions:  %d\n", total.LockRuns)
	fmt.Printf("  fast-path aborts:      %d\n", sum(total.FastAborts[:]))

	// 5. The same numbers the live way: a registry snapshot. Snapshot()
	//    is safe to call at any moment — including while the workers
	//    above were still running — and stays coherent (commits never
	//    exceed ops). It adds what quiescent stats cannot offer:
	//    per-path latency histograms and a path-transition trace.
	snap := reg.Snapshot()
	fmt.Printf("registry: %d ops across %d threads agree with merged stats: %v\n",
		snap.Stats.Ops, snap.Threads, snap.Stats == total)
	fast := snap.Latency[rtle.PathFast]
	fmt.Printf("  mean fast-path latency: %.0fns over %d ops\n", fast.MeanNanos(), fast.Count)
	fmt.Printf("  path transitions traced: %d\n", len(snap.Trace))

	if err := set.CheckInvariants(rtle.Direct(m)); err != nil {
		fmt.Println("INVARIANT VIOLATION:", err)
		return
	}
	fmt.Println("AVL invariants hold.")
}

func sum(xs []uint64) uint64 {
	var t uint64
	for _, x := range xs {
		t += x
	}
	return t
}
