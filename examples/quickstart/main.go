// Quickstart: the smallest end-to-end use of the library.
//
// It builds a simulated shared heap, creates an FG-TLE synchronization
// method over it, and runs concurrent critical sections against a shared
// counter and a shared AVL set — showing how work lands on the HTM fast
// path, the instrumented slow path, or the lock, and how to read the
// statistics back.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/mem"
)

func main() {
	// 1. A simulated heap: all shared state lives here so the simulated
	//    HTM can observe every access.
	m := mem.New(1 << 20)

	// 2. A synchronization method. FG-TLE with 256 ownership records;
	//    swap in core.NewTLE, core.NewRWTLE, norec.New, ... freely — the
	//    critical-section code below does not change.
	method := core.NewFGTLE(m, 256, core.Policy{})

	// 3. Shared data: a counter and an AVL set.
	counter := m.AllocLines(1)
	set := avl.New(m)
	harness.SeedSet(set, 1024)

	// 4. Concurrent workers. Each goroutine gets its own Thread (and
	//    per-thread data-structure handles).
	const goroutines = 4
	var wg sync.WaitGroup
	threads := make([]core.Thread, goroutines)
	for g := 0; g < goroutines; g++ {
		threads[g] = method.NewThread()
	}
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(id int, th core.Thread) {
			defer wg.Done()
			h := set.NewHandle()
			for i := 0; i < 5000; i++ {
				key := uint64((id*5000 + i) % 1024)
				// A critical section is a function of a Context;
				// all shared accesses go through it.
				th.Atomic(func(c core.Context) {
					c.Write(counter, c.Read(counter)+1)
				})
				switch i % 3 {
				case 0:
					h.Insert(th, key)
				case 1:
					h.Remove(th, key)
				default:
					h.Contains(th, key)
				}
			}
		}(g, threads[g])
	}
	wg.Wait()

	// 5. Results and statistics.
	fmt.Printf("counter: %d (expected %d)\n", m.Load(counter), goroutines*5000)
	fmt.Printf("set size: %d\n", set.Size(core.Direct(m)))

	var total core.Stats
	for _, th := range threads {
		total.Merge(th.Stats())
	}
	fmt.Printf("atomic blocks: %d\n", total.Ops)
	fmt.Printf("  fast-path HTM commits: %d\n", total.FastCommits)
	fmt.Printf("  slow-path HTM commits (while lock held): %d\n", total.SlowCommits)
	fmt.Printf("  lock-path executions:  %d\n", total.LockRuns)
	fmt.Printf("  fast-path aborts:      %d\n", sum(total.FastAborts[:]))
	if err := set.CheckInvariants(core.Direct(m)); err != nil {
		fmt.Println("INVARIANT VIOLATION:", err)
		return
	}
	fmt.Println("AVL invariants hold.")
}

func sum(xs []uint64) uint64 {
	var t uint64
	for _, x := range xs {
		t += x
	}
	return t
}
