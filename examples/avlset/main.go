// avlset reproduces a slice of the paper's §6.2 study interactively: it
// runs the AVL-set workload (20% Insert, 20% Remove, 60% Find over an
// 8192-key range — the contended configuration of Figs. 6 and 7) under
// several synchronization methods and prints throughput side by side,
// along with where the commits happened. Methods are assembled through
// the public rtle.New constructor; the harness only drives the workload.
//
// Run with: go run ./examples/avlset [-threads 4] [-dur 300ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"rtle"
	"rtle/internal/avl"
	"rtle/internal/harness"
)

func main() {
	threads := flag.Int("threads", 4, "worker threads")
	dur := flag.Duration("dur", 300*time.Millisecond, "duration per method")
	flag.Parse()

	const keyRange = 8192
	mix := harness.SetMix{InsertPct: 20, RemovePct: 20}
	methods := []struct {
		alg  rtle.Algorithm
		opts []rtle.Option
	}{
		{rtle.Lock, nil},
		{rtle.TLE, nil},
		{rtle.RWTLE, nil},
		{rtle.FGTLE, []rtle.Option{rtle.WithOrecs(16)}},
		{rtle.FGTLE, []rtle.Option{rtle.WithOrecs(1024)}},
		{rtle.NOrec, nil},
		{rtle.RHNOrec, nil},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tops/ms\tfast\tslow\tlock\tstm")
	for _, spec := range methods {
		m := rtle.NewMemory(harness.DefaultSetHeapWords(keyRange, *threads) + 1<<18)
		set := avl.New(m)
		harness.SeedSet(set, keyRange)
		tm := rtle.MustNew(spec.alg, append([]rtle.Option{rtle.WithMemory(m)}, spec.opts...)...)
		res := harness.Run(tm.Method(), harness.Config{
			Threads: *threads, Duration: *dur, Seed: 1,
		}, harness.SetWorkerFactory(set, mix, keyRange))
		if err := set.CheckInvariants(rtle.Direct(m)); err != nil {
			fmt.Fprintf(os.Stderr, "%s corrupted the set: %v\n", tm.Name(), err)
			os.Exit(1)
		}
		st := res.Total
		fmt.Fprintf(w, "%s\t%.0f\t%d\t%d\t%d\t%d\n",
			tm.Name(), res.Throughput(), st.FastCommits, st.SlowCommits, st.LockRuns,
			st.STMCommitsHTM+st.STMCommitsLock+st.STMCommitsRO)
	}
	w.Flush()
	fmt.Println("\nfast = uninstrumented HTM, slow = instrumented HTM while the lock was held,")
	fmt.Println("lock = pessimistic executions, stm = software-transaction commits (NOrec family).")
}
