// bank reproduces the paper's §6.3 bank-accounts corner case as a runnable
// example: every critical section is a read-modify-write transfer between
// two of 256 padded accounts, so RW-TLE's read-only slow path can never
// commit while the lock is held, and FG-TLE's orec granularity decides how
// much concurrency survives contention. The example verifies conservation
// of the total balance at the end — the invariant the synchronization must
// protect.
//
// Run with: go run ./examples/bank [-threads 4] [-dur 300ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"rtle/internal/bank"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/mem"
)

func main() {
	threads := flag.Int("threads", 4, "worker threads")
	dur := flag.Duration("dur", 300*time.Millisecond, "duration per method")
	flag.Parse()

	const accounts = 256
	const initial = 10000
	methods := []string{"Lock", "TLE", "RW-TLE", "FG-TLE(1)", "FG-TLE(256)", "FG-TLE(8192)", "NOrec", "RHNOrec"}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\ttransfers/ms\tfast\tslow\tlock\tconserved")
	for _, name := range methods {
		m := mem.New(1 << 20)
		b := bank.New(m, accounts, initial)
		method := harness.MustBuildMethod(name, m, core.Policy{})
		res := harness.Run(method, harness.Config{
			Threads: *threads, Duration: *dur, Seed: 7,
		}, harness.BankFactory(b, 100))
		err := b.CheckConservation(core.Direct(m), accounts*initial)
		ok := "yes"
		if err != nil {
			ok = "NO: " + err.Error()
		}
		st := res.Total
		fmt.Fprintf(w, "%s\t%.0f\t%d\t%d\t%d\t%s\n",
			name, res.Throughput(), st.FastCommits, st.SlowCommits, st.LockRuns, ok)
	}
	w.Flush()
}
