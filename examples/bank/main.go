// bank reproduces the paper's §6.3 bank-accounts corner case as a runnable
// example: every critical section is a read-modify-write transfer between
// two of 256 padded accounts, so RW-TLE's read-only slow path can never
// commit while the lock is held, and FG-TLE's orec granularity decides how
// much concurrency survives contention. The example verifies conservation
// of the total balance at the end — the invariant the synchronization must
// protect. Methods are assembled through the public rtle.New constructor.
//
// Run with: go run ./examples/bank [-threads 4] [-dur 300ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"rtle"
	"rtle/internal/bank"
	"rtle/internal/harness"
)

func main() {
	threads := flag.Int("threads", 4, "worker threads")
	dur := flag.Duration("dur", 300*time.Millisecond, "duration per method")
	flag.Parse()

	const accounts = 256
	const initial = 10000
	methods := []struct {
		alg  rtle.Algorithm
		opts []rtle.Option
	}{
		{rtle.Lock, nil},
		{rtle.TLE, nil},
		{rtle.RWTLE, nil},
		{rtle.FGTLE, []rtle.Option{rtle.WithOrecs(1)}},
		{rtle.FGTLE, []rtle.Option{rtle.WithOrecs(256)}},
		{rtle.FGTLE, []rtle.Option{rtle.WithOrecs(8192)}},
		{rtle.NOrec, nil},
		{rtle.RHNOrec, nil},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\ttransfers/ms\tfast\tslow\tlock\tconserved")
	for _, spec := range methods {
		m := rtle.NewMemory(1 << 20)
		b := bank.New(m, accounts, initial)
		tm := rtle.MustNew(spec.alg, append([]rtle.Option{rtle.WithMemory(m)}, spec.opts...)...)
		res := harness.Run(tm.Method(), harness.Config{
			Threads: *threads, Duration: *dur, Seed: 7,
		}, harness.BankFactory(b, 100))
		err := b.CheckConservation(rtle.Direct(m), accounts*initial)
		ok := "yes"
		if err != nil {
			ok = "NO: " + err.Error()
		}
		st := res.Total
		fmt.Fprintf(w, "%s\t%.0f\t%d\t%d\t%d\t%s\n",
			tm.Name(), res.Throughput(), st.FastCommits, st.SlowCommits, st.LockRuns, ok)
	}
	w.Flush()
}
