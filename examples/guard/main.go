// guard demonstrates the elision-guard API: a plain Go struct whose
// shared state lives on the guard's heap, protected by an rtle.RWMutex
// exactly the way sync.RWMutex would protect native fields — except that
// Do/RDo sections *elide*: they run as speculative hardware transactions
// subscribed to the lock word, and only fall back to really taking the
// lock when speculation fails.
//
// The demo is a temperature gauge: writers record samples (read-modify-
// write sections through Do), readers aggregate (read-only sections
// through RDo), and one maintenance goroutine occasionally resets the
// gauge through the bracket form (Lock/Ctx/Unlock — always pessimistic,
// interoperating with the speculative forms via lock subscription). At
// the end the guard's Stats show where the sections actually ran.
//
// Run with: go run ./examples/guard
package main

import (
	"fmt"
	"sync"

	"rtle"
)

// Gauge is an ordinary Go type; only its hot shared state lives in
// simulated memory so the elided sections cover every access.
type Gauge struct {
	g *rtle.RWMutex

	count rtle.Addr // samples recorded
	sum   rtle.Addr // running sum
	max   rtle.Addr // maximum sample
}

func NewGauge() *Gauge {
	g := rtle.MustNewRWMutex()
	m := g.Memory()
	return &Gauge{g: g, count: m.AllocLines(1), sum: m.AllocLines(1), max: m.AllocLines(1)}
}

// Record adds one sample — a read-modify-write section, so it uses Do.
func (t *Gauge) Record(sample uint64) {
	t.g.Do(func(c rtle.Context) {
		c.Write(t.count, c.Read(t.count)+1)
		c.Write(t.sum, c.Read(t.sum)+sample)
		if sample > c.Read(t.max) {
			c.Write(t.max, sample)
		}
	})
}

// Mean aggregates — a read-only section, so it uses RDo and runs
// concurrently with other readers even on the fallback path.
func (t *Gauge) Mean() float64 {
	var count, sum uint64
	t.g.RDo(func(c rtle.Context) {
		count, sum = c.Read(t.count), c.Read(t.sum)
	})
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}

// Reset clears the gauge through the bracket form: Lock/Unlock never
// speculate (Go cannot re-execute the code between them after a hardware
// abort), but they interoperate with Do/RDo via lock subscription.
func (t *Gauge) Reset() {
	t.g.Lock()
	defer t.g.Unlock()
	c := t.g.Ctx()
	c.Write(t.count, 0)
	c.Write(t.sum, 0)
	c.Write(t.max, 0)
}

func main() {
	gauge := NewGauge()

	const writers, readers = 4, 4
	const samples = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < samples; i++ {
				gauge.Record(uint64(id*samples+i) % 373)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < samples; i++ {
				_ = gauge.Mean()
			}
		}()
	}
	wg.Wait()

	fmt.Printf("mean after %d samples: %.1f\n", writers*samples, gauge.Mean())
	gauge.Reset()
	fmt.Printf("mean after reset: %.1f\n", gauge.Mean())

	s := gauge.g.Stats()
	fmt.Printf("sections: %d total — %d speculative commits, %d slow-path commits, %d under the lock\n",
		s.Ops, s.FastCommits, s.SlowCommits, s.LockRuns)
	fmt.Printf("speculation carried %.1f%% of the sections\n",
		100*float64(s.FastCommits+s.SlowCommits)/float64(s.Ops))
}
