// goflag demonstrates the paper's §5 limitation (Figure 4) and its
// lazy-subscription remedy, live, entirely through the public rtle API.
//
// The scenario: Thread 1 takes the lock, sets GoFlag, and only later
// initializes Ptr before unlocking. Thread 2 spins on GoFlag outside any
// critical section, then runs an *empty* critical section purely as a
// barrier ("wait until the lock is free"), then dereferences Ptr.
//
// Under a plain lock — and under standard TLE — the empty critical
// section cannot complete while Thread 1 holds the lock, so Ptr is always
// initialized when Thread 2 reads it. Under refined TLE the empty
// critical section can commit on the slow path *while the lock is held*,
// and Thread 2 observes Ptr == 0. Enabling lazy subscription (§5)
// restores the blocking behaviour.
//
// Run with: go run ./examples/goflag
package main

import (
	"fmt"
	"runtime"

	"rtle"
)

func run(lazy bool) (sawNull int) {
	const rounds = 200
	for i := 0; i < rounds; i++ {
		m := rtle.NewMemory(1 << 16)
		opts := []rtle.Option{
			rtle.WithMemory(m),
			rtle.WithOrecs(64),
			// Pace the lock holder so its critical section spans
			// scheduler slices, as a long computation would.
			rtle.WithInterleave(2),
		}
		if lazy {
			opts = append(opts, rtle.WithLazySubscription())
		}
		tm := rtle.MustNew(rtle.FGTLE, opts...)
		goFlag := m.AllocLines(1)
		ptr := m.AllocLines(1)
		scratch := m.AllocLines(64)

		t1 := tm.NewThread()
		t2 := tm.NewThread()
		done := make(chan struct{})
		go func() {
			t1.Atomic(func(c rtle.Context) {
				c.Unsupported() // force the lock path, as a long CS would
				c.Write(goFlag, 1)
				// A long computation between the flag and the
				// pointer initialization.
				for w := 0; w < 64; w++ {
					c.Write(scratch+rtle.Addr(w*rtle.WordsPerLine), uint64(w))
				}
				c.Write(ptr, 0xCAFE)
			})
			close(done)
		}()

		// Thread 2: wait for GoFlag outside the critical section.
		for m.Load(goFlag) == 0 {
			runtime.Gosched()
		}
		// Barrier: empty critical section.
		t2.Atomic(func(rtle.Context) {})
		// Expectation (under lock semantics): Ptr is non-null now.
		if m.Load(ptr) == 0 {
			sawNull++
		}
		<-done
	}
	return sawNull
}

func main() {
	fmt.Println("Figure 4 scenario, 200 rounds each:")
	n := run(false)
	fmt.Printf("  refined TLE (eager):  saw Ptr==NULL %d times — the §5 limitation\n", n)
	n = run(true)
	fmt.Printf("  lazy subscription:    saw Ptr==NULL %d times — lock semantics restored\n", n)
	if n != 0 {
		fmt.Println("UNEXPECTED: lazy subscription failed to restore barrier semantics")
	}
}
