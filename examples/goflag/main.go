// goflag demonstrates the paper's §5 limitation (Figure 4) and its
// lazy-subscription remedy, live.
//
// The scenario: Thread 1 takes the lock, sets GoFlag, and only later
// initializes Ptr before unlocking. Thread 2 spins on GoFlag outside any
// critical section, then runs an *empty* critical section purely as a
// barrier ("wait until the lock is free"), then dereferences Ptr.
//
// Under a plain lock — and under standard TLE — the empty critical
// section cannot complete while Thread 1 holds the lock, so Ptr is always
// initialized when Thread 2 reads it. Under refined TLE the empty
// critical section can commit on the slow path *while the lock is held*,
// and Thread 2 observes Ptr == 0. Enabling lazy subscription (§5)
// restores the blocking behaviour.
//
// Run with: go run ./examples/goflag
package main

import (
	"fmt"
	"runtime"

	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
)

func run(lazy bool) (sawNull int) {
	const rounds = 200
	for i := 0; i < rounds; i++ {
		m := mem.New(1 << 16)
		meth := core.NewFGTLE(m, 64, core.Policy{
			LazySubscription: lazy,
			// Pace the lock holder so its critical section spans
			// scheduler slices, as a long computation would.
			HTM: htm.Config{InterleaveEvery: 2},
		})
		goFlag := m.AllocLines(1)
		ptr := m.AllocLines(1)
		scratch := m.AllocLines(64)

		t1 := meth.NewThread()
		t2 := meth.NewThread()
		done := make(chan struct{})
		go func() {
			t1.Atomic(func(c core.Context) {
				c.Unsupported() // force the lock path, as a long CS would
				c.Write(goFlag, 1)
				// A long computation between the flag and the
				// pointer initialization.
				for w := 0; w < 64; w++ {
					c.Write(scratch+mem.Addr(w*mem.WordsPerLine), uint64(w))
				}
				c.Write(ptr, 0xCAFE)
			})
			close(done)
		}()

		// Thread 2: wait for GoFlag outside the critical section.
		for m.Load(goFlag) == 0 {
			runtime.Gosched()
		}
		// Barrier: empty critical section.
		t2.Atomic(func(core.Context) {})
		// Expectation (under lock semantics): Ptr is non-null now.
		if m.Load(ptr) == 0 {
			sawNull++
		}
		<-done
	}
	return sawNull
}

func main() {
	fmt.Println("Figure 4 scenario, 200 rounds each:")
	n := run(false)
	fmt.Printf("  refined TLE (eager):  saw Ptr==NULL %d times — the §5 limitation\n", n)
	n = run(true)
	fmt.Printf("  lazy subscription:    saw Ptr==NULL %d times — lock semantics restored\n", n)
	if n != 0 {
		fmt.Println("UNEXPECTED: lazy subscription failed to restore barrier semantics")
	}
}
