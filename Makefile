# Developer entry points. CI runs the same targets.

GO ?= go

.PHONY: build test race vet rtlevet e2e bench-json bench-wire bench-sweep bench-smoke bench-guard bench-repl all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# rtlevet enforces the repository's HTM/TLE instrumentation discipline.
rtlevet:
	$(GO) build -o /tmp/rtlevet ./cmd/rtlevet
	$(GO) vet -vettool=/tmp/rtlevet ./...

# e2e boots rtled on loopback and validates wire-level linearizability
# with rtleload, clean and under a fault plan, once per shard count.
e2e:
	scripts/e2e.sh

# bench-json refreshes the committed benchmark grid. The file lands as
# BENCH_<n>.json with n one past the highest committed ordinal; rename to
# the PR's ordinal before committing.
bench-json:
	$(GO) run ./cmd/rtlebench -threads 1,2,4 -dur 300ms -json -outdir .

# bench-wire additionally sweeps the serving layer (shard counts over
# loopback TCP) into the same BENCH_<n>.json's "wire" section.
bench-wire:
	$(GO) run ./cmd/rtlebench -threads 1,2,4 -dur 300ms -json -outdir . \
		-wire -wire-shards 1,2,4 -wire-ops 60000 -wire-rate 40000

# bench-sweep runs the multi-core wire sweep (coalesce x workers x shards
# x GOMAXPROCS over one deeply pipelined connection) into the next
# BENCH_<n>.json. Grid axes are overridable via SWEEP_* env vars.
bench-sweep:
	scripts/benchsweep.sh

# bench-smoke is the CI regression gate: a short two-cell wire sweep
# diffed against the committed BENCH_8.json baseline; any matched cell
# dropping more than 20% fails.
bench-smoke:
	rm -rf /tmp/benchsmoke && mkdir -p /tmp/benchsmoke
	SWEEP_OUTDIR=/tmp/benchsmoke SWEEP_SHARDS=1,4 SWEEP_PROCS=1 \
		SWEEP_COALESCE=8 SWEEP_RATE=0 SWEEP_OPS=15000 scripts/benchsweep.sh
	$(GO) run ./scripts/benchdiff.go -tolerance 0.20 BENCH_8.json /tmp/benchsmoke/BENCH_0.json

# bench-guard sweeps the elision guards (rtle.Mutex / rtle.RWMutex vs
# sync locks vs raw Methods) into a BENCH_<n>.json "guard" section. The
# method grid is skipped (-methods '') so the file is guard-only.
bench-guard:
	$(GO) run ./cmd/rtlebench -methods '' -json -outdir . \
		-guard -guard-goroutines 1,4,16 -guard-read-pcts 90,10 -guard-ops 20000

# bench-repl sweeps the replication ack modes (off, async, sync) into a
# BENCH_<n>.json "repl" section: the same closed-loop load against an
# unreplicated server, an async pair, and a sync pair.
bench-repl:
	$(GO) run ./cmd/rtlebench -methods '' -json -outdir . \
		-repl -repl-ops 60000 -repl-read-pct 50
