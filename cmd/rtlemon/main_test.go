package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"rtle/internal/core"
	"rtle/internal/fault"
	"rtle/internal/harness"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/obs"
)

// liveRegistry runs a short fault-injected TLE workload observed by a fresh
// registry, so the scrape endpoints have real counters — including injected
// faults — to serve.
func liveRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry(obs.Config{})
	policy := core.Policy{Attempts: 5, Observer: reg}
	d := fault.NewDirector(fault.Plan{Seed: 7, BeginProb: 0.2, Reason: htm.Spurious})
	d.Configure(&policy)
	m := mem.New(1 << 12)
	meth, err := harness.BuildMethod("TLE", m, policy)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	th := meth.NewThread()
	for i := 0; i < 400; i++ {
		th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
	}
	if d.TotalInjected() == 0 {
		t.Fatal("setup workload injected no faults")
	}
	return reg
}

func TestMetricsEndpoint(t *testing.T) {
	mux := newMux(liveRegistry(t))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))

	if w.Code != 200 {
		t.Fatalf("GET /metrics: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	body := w.Body.String()
	for _, family := range []string{
		"rtle_ops_total",
		"rtle_commits_total",
		"rtle_attempts_total",
		"rtle_aborts_total",
		"rtle_injected_faults_total",
		"rtle_threads",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("GET /metrics: missing family %s", family)
		}
	}
	// The injected-fault breakdown must carry the actual injections, not
	// just the family header.
	if !strings.Contains(body, `rtle_injected_faults_total{reason="spurious"}`) {
		t.Error("GET /metrics: no per-reason injected-fault sample")
	}
	if strings.Contains(body, `rtle_injected_faults_total{reason="spurious"} 0`) {
		t.Error("GET /metrics: injected spurious count stayed zero")
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	mux := newMux(liveRegistry(t))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/snapshot", nil))

	if w.Code != 200 {
		t.Fatalf("GET /snapshot: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET /snapshot: Content-Type %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("GET /snapshot: invalid JSON: %v", err)
	}
	if snap.Stats.Ops != 400 {
		t.Errorf("snapshot Ops = %d, want 400", snap.Stats.Ops)
	}
	if snap.Threads != 1 {
		t.Errorf("snapshot Threads = %d, want 1", snap.Threads)
	}
	var injected uint64
	for i := 0; i < htm.NumReasons; i++ {
		injected += snap.Stats.InjectedAborts[i]
	}
	if injected == 0 {
		t.Error("snapshot carries no injected-fault counts")
	}
}

func TestMuxUnknownPath(t *testing.T) {
	mux := newMux(obs.NewRegistry(obs.Config{}))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/nope", nil))
	if w.Code != 404 {
		t.Fatalf("GET /nope: status %d, want 404", w.Code)
	}
}
