// Command rtlemon runs an AVL-set workload with the live-observability
// layer attached and streams metrics while the workload executes: periodic
// delta rows (throughput, per-path commits, abort rate) on stdout, and a
// final snapshot in Prometheus text format or JSON. With -http it also
// serves /metrics (Prometheus) and /snapshot (JSON) live during the run,
// so the registry can be scraped mid-experiment.
//
// Examples:
//
//	rtlemon -method "FG-TLE(256)" -threads 8 -duration 5s
//	rtlemon -method TLE -threads 4 -duration 10s -http :9090
//	rtlemon -method RHNOrec -duration 3s -format json -trace 64
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/mem"
	"rtle/internal/obs"
	"rtle/internal/server"
)

func main() {
	method := flag.String("method", "FG-TLE(256)", "synchronization method (Lock, TLE, HLE, RW-TLE, FG-TLE(N), FG-TLE(adaptive), ALE(N), NOrec, RHNOrec)")
	threads := flag.Int("threads", 4, "worker threads")
	duration := flag.Duration("duration", 5*time.Second, "run duration")
	interval := flag.Duration("interval", 500*time.Millisecond, "live sample interval (0 disables sampling)")
	keyRange := flag.Uint64("keyrange", 8192, "AVL-set key range")
	inserts := flag.Int("inserts", 20, "insert percentage")
	removes := flag.Int("removes", 20, "remove percentage")
	format := flag.String("format", "prom", "final snapshot format: prom or json")
	httpAddr := flag.String("http", "", "serve /metrics and /snapshot on this address during the run (e.g. :9090)")
	trace := flag.Int("trace", 1024, "path-transition trace capacity (negative disables)")
	traceSample := flag.Int("tracesample", 1, "record every Nth path transition")
	attempts := flag.Int("attempts", core.DefaultAttempts, "HTM attempts before lock fallback")
	lazy := flag.Bool("lazy", false, "lazy lock subscription on the slow path")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	if *inserts+*removes > 100 {
		fatal("inserts + removes must be at most 100")
	}
	if *format != "prom" && *format != "json" {
		fatal("format must be prom or json")
	}

	reg := obs.NewRegistry(obs.Config{TraceCapacity: *trace, TraceSample: *traceSample})
	policy := core.Policy{Attempts: *attempts, LazySubscription: *lazy, Observer: reg}

	m := mem.New(harness.DefaultSetHeapWords(*keyRange, *threads) + 1<<18)
	set := avl.New(m)
	harness.SeedSet(set, *keyRange)
	meth, err := harness.BuildMethod(*method, m, policy)
	if err != nil {
		fatal(err)
	}

	var admin *server.AdminServer
	if *httpAddr != "" {
		admin, err = server.StartAdmin(*httpAddr, newMux(reg))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rtlemon: serving /metrics and /snapshot on %s\n", admin.Addr())
	}

	fmt.Fprintf(os.Stderr, "rtlemon: %s, %d threads, %v, %d:%d:%d over range %d\n",
		meth.Name(), *threads, *duration, *inserts, *removes,
		100-*inserts-*removes, *keyRange)

	res := harness.Run(meth, harness.Config{
		Threads:  *threads,
		Duration: *duration,
		Seed:     *seed,
		Sample: harness.SampleConfig{
			Registry: reg,
			Interval: *interval,
			W:        os.Stdout,
			Format:   "csv",
		},
	}, harness.SetWorkerFactory(set, harness.SetMix{InsertPct: *inserts, RemovePct: *removes}, *keyRange))

	if err := set.CheckInvariants(core.Direct(m)); err != nil {
		fatal("TREE CORRUPTED: " + err.Error())
	}

	if admin != nil {
		// Let a final scrape land before the process exits.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := admin.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "rtlemon: http shutdown:", err)
		}
		cancel()
	}

	snap := reg.Snapshot()
	fmt.Fprintf(os.Stderr, "rtlemon: %d ops in %v (%.0f ops/ms); final snapshot follows\n",
		res.Total.Ops, res.Elapsed.Round(time.Millisecond), res.Throughput())
	switch *format {
	case "prom":
		err = snap.WritePrometheus(os.Stdout)
	case "json":
		err = snap.WriteJSON(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

// newMux builds the live-scrape HTTP handler: /metrics serves the current
// registry snapshot in Prometheus text format, /snapshot as JSON.
func newMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		// A write error here means the scraper hung up; nothing to do.
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A write error here means the client hung up; nothing to do.
		_ = reg.Snapshot().WriteJSON(w)
	})
	return mux
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "rtlemon:", v)
	os.Exit(2)
}
