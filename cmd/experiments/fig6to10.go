package main

import (
	"fmt"

	"rtle/internal/harness"
)

// slowPathMix is the workload of Figs. 6–10: key range 8192, 20%
// Insert/Remove.
const slowPathKeyRange = 8192

var slowPathMix = harness.SetMix{InsertPct: 20, RemovePct: 20}

// fig6 regenerates Figure 6: slow-path throughput of the refined variants
// — hardware commits on the instrumented path and lock-path executions,
// each per millisecond of lock-held time.
func fig6(opt options) {
	header("Fig. 6: refined-TLE slow-path throughput (ops/ms of lock-held time) — key range 8192, 20% Ins/Rem")
	w := newTable()
	fmt.Fprintf(w, "method")
	for _, n := range opt.threads {
		fmt.Fprintf(w, "\tSlowHTM T=%d\tLock T=%d", n, n)
	}
	fmt.Fprintln(w)
	for _, meth := range harness.RefinedNames {
		fmt.Fprintf(w, "%s", meth)
		for _, n := range opt.threads {
			res := runSetPoint(opt, meth, slowPathKeyRange, slowPathMix, n)
			fmt.Fprintf(w, "\t%.0f\t%.0f", res.SlowHTMThroughput(), res.LockPathThroughput())
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

// fig7 regenerates Figure 7: per-execution time under lock, normalized to
// the Lock method at the same thread count.
func fig7(opt options) {
	header("Fig. 7: execution time under lock relative to Lock — key range 8192, 20% Ins/Rem")
	methods := append([]string{"Lock", "TLE"}, harness.RefinedNames...)
	w := newTable()
	fmt.Fprintf(w, "method")
	for _, n := range opt.threads {
		fmt.Fprintf(w, "\tT=%d", n)
	}
	fmt.Fprintln(w)
	bases := map[int]*harness.Result{}
	for _, n := range opt.threads {
		bases[n] = runSetPoint(opt, "Lock", slowPathKeyRange, slowPathMix, n)
	}
	for _, meth := range methods {
		fmt.Fprintf(w, "%s", meth)
		for _, n := range opt.threads {
			var rel float64
			if meth == "Lock" {
				rel = 1.0
			} else {
				res := runSetPoint(opt, meth, slowPathKeyRange, slowPathMix, n)
				rel = res.RelativeTimeUnderLock(bases[n])
			}
			fmt.Fprintf(w, "\t%.2f", rel)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

// fig8 regenerates Figure 8: RHNOrec's slow-path throughput — hardware
// commits that bump the timestamp, and software commits, per millisecond
// of software-transaction time.
func fig8(opt options) {
	header("Fig. 8: RHNOrec slow-path throughput (ops/ms of software-transaction time) — key range 8192, 20% Ins/Rem")
	w := newTable()
	fmt.Fprintln(w, "threads\tSlowHTM\tSWSlow")
	for _, n := range opt.threads {
		res := runSetPoint(opt, "RHNOrec", slowPathKeyRange, slowPathMix, n)
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\n", n, res.RHNOrecSlowHTMThroughput(), res.STMThroughput())
	}
	w.Flush()
}

// fig9 regenerates Figure 9: RHNOrec execution-type distribution.
func fig9(opt options) {
	header("Fig. 9: RHNOrec execution-type fractions — key range 8192, 20% Ins/Rem")
	w := newTable()
	fmt.Fprintln(w, "threads\tHTMFast\tHTMSlow\tSTMFastCommit\tSTMSlowCommit")
	for _, n := range opt.threads {
		res := runSetPoint(opt, "RHNOrec", slowPathKeyRange, slowPathMix, n)
		f := res.ExecTypeDistribution()
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\t%.3f\n", n, f.HTMFast, f.HTMSlow, f.STMFast, f.STMSlow)
	}
	w.Flush()
}

// fig10 regenerates Figure 10: value-based validations per software
// transaction, NOrec vs RHNOrec.
func fig10(opt options) {
	header("Fig. 10: validations per software transaction — key range 8192, 20% Ins/Rem")
	w := newTable()
	fmt.Fprintln(w, "threads\tNOrec\tRHNOrec")
	for _, n := range opt.threads {
		no := runSetPoint(opt, "NOrec", slowPathKeyRange, slowPathMix, n)
		rh := runSetPoint(opt, "RHNOrec", slowPathKeyRange, slowPathMix, n)
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\n", n, no.ValidationsPerTx(), rh.ValidationsPerTx())
	}
	w.Flush()
}
