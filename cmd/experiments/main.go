// Command experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated-HTM substrate. Each figure is a
// subcommand-style flag; -fig all runs the full evaluation and prints the
// text tables that EXPERIMENTS.md records.
//
// Usage:
//
//	experiments -fig 5            # AVL throughput grid (Fig. 5)
//	experiments -fig 6            # slow-path throughput (Fig. 6)
//	experiments -fig 7            # time under lock (Fig. 7)
//	experiments -fig 8            # RHNOrec slow-path throughput (Fig. 8)
//	experiments -fig 9            # RHNOrec execution types (Fig. 9)
//	experiments -fig 10           # validations per transaction (Fig. 10)
//	experiments -fig 11           # bank accounts (Fig. 11)
//	experiments -fig 12           # HTM-unfriendly corner case (Fig. 12)
//	experiments -fig 13           # ccTSA runtimes (Fig. 13 + fallback table)
//	experiments -fig all -quick   # everything, at reduced duration
//
// On a many-core machine, pass the paper's thread axis, e.g.
// -threads 1,2,4,8,12,16,18,24,28,36.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

type options struct {
	fig        string
	threads    []int
	dur        time.Duration
	seed       uint64
	quick      bool
	interleave int
	spurious   float64
	runs       int
	csvPath    string
}

func main() {
	var opt options
	var threadsFlag string
	flag.StringVar(&opt.fig, "fig", "all", "figure to regenerate: 5..13, scan, or all")
	flag.StringVar(&threadsFlag, "threads", "", "comma-separated thread counts (default 1,2,4,8)")
	flag.DurationVar(&opt.dur, "dur", 300*time.Millisecond, "duration per data point")
	var seed int64
	flag.Int64Var(&seed, "seed", 1, "experiment seed")
	flag.BoolVar(&opt.quick, "quick", false, "reduced parameters for a fast pass")
	flag.IntVar(&opt.interleave, "interleave", 4, "concurrency virtualization: yield every N accesses (0 = off; see DESIGN.md §1.5)")
	flag.Float64Var(&opt.spurious, "spurious", 0.01, "per-access spurious-abort probability modelling capacity/interrupt aborts (0 = off)")
	flag.IntVar(&opt.runs, "runs", 1, "runs per data point; the median-throughput run is reported (the paper uses 5)")
	flag.StringVar(&opt.csvPath, "csv", "", "also append every AVL data point to this CSV file")
	flag.Parse()
	opt.seed = uint64(seed)

	if threadsFlag == "" {
		threadsFlag = "1,2,4,8"
	}
	for _, f := range strings.Split(threadsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "experiments: bad thread count %q\n", f)
			os.Exit(2)
		}
		opt.threads = append(opt.threads, n)
	}
	if opt.quick {
		opt.dur = 100 * time.Millisecond
	}

	figs := map[string]func(options){
		"5": fig5, "6": fig6, "7": fig7, "8": fig8, "9": fig9,
		"10": fig10, "11": fig11, "12": fig12, "13": fig13,
		"scan": figScan,
	}
	order := []string{"5", "6", "7", "8", "9", "10", "11", "12", "13", "scan"}
	if opt.fig == "all" {
		for _, f := range order {
			figs[f](opt)
		}
		flushCSV(opt)
		return
	}
	f, ok := figs[opt.fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q (want 5..13, scan, or all)\n", opt.fig)
		os.Exit(2)
	}
	f(opt)
	flushCSV(opt)
}
