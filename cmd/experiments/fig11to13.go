package main

import (
	"fmt"

	"rtle/internal/bank"
	"rtle/internal/cctsa"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/mem"
)

// fig11 regenerates Figure 11: the bank-accounts read-modify-write
// micro-benchmark (256 padded accounts, random transfers), throughput in
// transfers per millisecond.
func fig11(opt options) {
	header("Fig. 11: bank-accounts throughput (transfers/ms) — 256 accounts")
	methods := []string{"Lock", "TLE", "RW-TLE", "FG-TLE(1)", "FG-TLE(16)",
		"FG-TLE(256)", "FG-TLE(1024)", "FG-TLE(4096)", "FG-TLE(8192)", "NOrec", "RHNOrec"}
	if opt.quick {
		methods = []string{"Lock", "TLE", "RW-TLE", "FG-TLE(256)", "NOrec", "RHNOrec"}
	}
	w := newTable()
	fmt.Fprintf(w, "method")
	for _, n := range opt.threads {
		fmt.Fprintf(w, "\tT=%d", n)
	}
	fmt.Fprintln(w)
	for _, meth := range methods {
		fmt.Fprintf(w, "%s", meth)
		for _, n := range opt.threads {
			m := mem.New(1 << 20)
			b := bank.New(m, 256, 10000)
			method := harness.MustBuildMethod(meth, m, opt.policy())
			res := harness.Run(method, harness.Config{
				Threads: n, Duration: opt.dur, Seed: opt.seed,
			}, harness.BankFactory(b, 100))
			fmt.Fprintf(w, "\t%.0f", res.Throughput())
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

// fig12 regenerates Figure 12: one thread repeatedly executes an
// HTM-unfriendly Insert/Remove (it always falls back to the lock) while
// the remaining threads run Find — total throughput per method.
func fig12(opt options) {
	header("Fig. 12: HTM-unfriendly thread + readers, AVL key range 65536 (ops/ms)")
	keyRange := uint64(65536)
	if opt.quick {
		keyRange = 8192
	}
	methods := []string{"Lock", "TLE", "RW-TLE", "FG-TLE(1)", "FG-TLE(16)",
		"FG-TLE(256)", "FG-TLE(4096)", "FG-TLE(8192)", "NOrec", "RHNOrec"}
	if opt.quick {
		methods = []string{"Lock", "TLE", "RW-TLE", "FG-TLE(256)", "NOrec", "RHNOrec"}
	}
	w := newTable()
	fmt.Fprintf(w, "method")
	for _, n := range opt.threads {
		fmt.Fprintf(w, "\tT=%d", n)
	}
	fmt.Fprintln(w)
	for _, meth := range methods {
		fmt.Fprintf(w, "%s", meth)
		for _, n := range opt.threads {
			m := mem.New(harness.DefaultSetHeapWords(keyRange, n) + 1<<18)
			set := avlSeeded(m, keyRange)
			method := harness.MustBuildMethod(meth, m, opt.policy())
			res := harness.Run(method, harness.Config{
				Threads: n, Duration: opt.dur, Seed: opt.seed,
			}, harness.UnfriendlyFactory(set, keyRange, true))
			fmt.Fprintf(w, "\t%.0f", res.Throughput())
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

// fig13 regenerates Figure 13: total ccTSA runtime versus thread count for
// the original fine-grained-locking implementation and the transactified
// variant under each synchronization method, plus the §6.4.2 lock-fallback
// table.
func fig13(opt options) {
	genomeLen := 60000
	coverage := 8.0
	if opt.quick {
		genomeLen = 10000
	}
	header(fmt.Sprintf("Fig. 13: ccTSA total runtime (ms) — synthetic genome %d bp, 36-bp reads, k=27", genomeLen))
	methods := []string{"Lock", "TLE", "RW-TLE", "FG-TLE(1)", "FG-TLE(16)",
		"FG-TLE(256)", "FG-TLE(1024)", "FG-TLE(4096)", "FG-TLE(8192)"}
	if opt.quick {
		methods = []string{"Lock", "TLE", "RW-TLE", "FG-TLE(1024)"}
	}
	w := newTable()
	fmt.Fprintf(w, "variant")
	for _, n := range opt.threads {
		fmt.Fprintf(w, "\tT=%d", n)
	}
	fmt.Fprintln(w)

	fallback := map[string][]float64{}

	fmt.Fprintf(w, "Lock.orig")
	for _, n := range opt.threads {
		in := cctsa.Prepare(cctsa.Config{GenomeLen: genomeLen, Coverage: coverage, Threads: n, Seed: opt.seed})
		res := in.RunOriginal()
		fmt.Fprintf(w, "\t%.0f", float64(res.Total.Milliseconds()))
	}
	fmt.Fprintln(w)

	for _, meth := range methods {
		fmt.Fprintf(w, "%s", meth)
		for _, n := range opt.threads {
			in := cctsa.Prepare(cctsa.Config{GenomeLen: genomeLen, Coverage: coverage, Threads: n, Seed: opt.seed})
			res := in.RunTransactified(func(m *mem.Memory) core.Method {
				return harness.MustBuildMethod(meth, m, opt.policy())
			})
			fmt.Fprintf(w, "\t%.0f", float64(res.Total.Milliseconds()))
			if res.Stats.Ops > 0 {
				fallback[meth] = append(fallback[meth], float64(res.Stats.LockRuns)/float64(res.Stats.Ops))
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	header("§6.4.2: fraction of atomic blocks that acquired the lock (per thread count)")
	w2 := newTable()
	fmt.Fprintf(w2, "method")
	for _, n := range opt.threads {
		fmt.Fprintf(w2, "\tT=%d", n)
	}
	fmt.Fprintln(w2)
	for _, meth := range methods {
		if meth == "Lock" {
			continue
		}
		fmt.Fprintf(w2, "%s", meth)
		for _, r := range fallback[meth] {
			fmt.Fprintf(w2, "\t%.4f%%", r*100)
		}
		fmt.Fprintln(w2)
	}
	w2.Flush()
}
