package main

import (
	"fmt"

	"rtle/internal/avl"
	"rtle/internal/harness"
	"rtle/internal/mem"
)

// figScan is this repository's extension experiment (EXPERIMENTS.md §Scan):
// the §6.2 point-operation workload plus occasional wide range scans whose
// read sets overflow the simulated HTM capacity, so they fall back to the
// lock *naturally* — the capacity failure source the paper's §1 names,
// with no fault injection. While a scan holds the lock, refined TLE lets
// point operations keep committing on the slow path.
func figScan(opt options) {
	header("Scan extension: 20% Ins/Rem + 5% wide scans (capacity fallbacks), key range 8192 (ops/ms)")
	mix := harness.ScanMix{
		SetMix:   harness.SetMix{InsertPct: 20, RemovePct: 20},
		ScanPct:  5,
		ScanSpan: 4096,
	}
	methods := []string{"Lock", "TLE", "RW-TLE", "FG-TLE(16)", "FG-TLE(1024)", "FG-TLE(8192)", "NOrec", "RHNOrec"}
	w := newTable()
	fmt.Fprintf(w, "method")
	for _, n := range opt.threads {
		fmt.Fprintf(w, "\tT=%d\tslow T=%d", n, n)
	}
	fmt.Fprintln(w)
	for _, meth := range methods {
		fmt.Fprintf(w, "%s", meth)
		for _, n := range opt.threads {
			res := harness.Median(opt.runs, func() *harness.Result {
				m := mem.New(harness.DefaultSetHeapWords(8192, n) + 1<<18)
				set := avl.New(m)
				harness.SeedSet(set, 8192)
				method := harness.MustBuildMethod(meth, m, opt.policy())
				return harness.Run(method, harness.Config{
					Threads: n, Duration: opt.dur, Seed: opt.seed,
				}, harness.ScanWorkerFactory(set, mix, 8192))
			})
			fmt.Fprintf(w, "\t%.0f\t%d", res.Throughput(), res.Total.SlowCommits)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}
