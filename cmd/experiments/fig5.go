package main

import (
	"fmt"

	"rtle/internal/harness"
)

// fig5 regenerates Figure 5: AVL-set speedup over single-threaded Lock,
// for key ranges {8192, 65536} × four operation mixes × all methods ×
// the thread axis.
func fig5(opt options) {
	keyRanges := []uint64{8192, 65536}
	methods := harness.MethodNames
	ms := mixes
	if opt.quick {
		keyRanges = keyRanges[:1]
		ms = []harness.SetMix{{InsertPct: 20, RemovePct: 20}}
		methods = []string{"Lock", "NOrec", "RHNOrec", "TLE", "RW-TLE", "FG-TLE(16)", "FG-TLE(1024)"}
	}
	for _, kr := range keyRanges {
		for _, mix := range ms {
			header(fmt.Sprintf("Fig. 5: AVL speedup vs 1-thread Lock — key range %d, mix %s (Ins:Rem:Find)", kr, mixLabel(mix)))
			base := runSetPoint(opt, "Lock", kr, mix, 1)
			w := newTable()
			fmt.Fprintf(w, "method")
			for _, n := range opt.threads {
				fmt.Fprintf(w, "\tT=%d", n)
			}
			fmt.Fprintln(w)
			for _, meth := range methods {
				fmt.Fprintf(w, "%s", meth)
				for _, n := range opt.threads {
					res := runSetPoint(opt, meth, kr, mix, n)
					fmt.Fprintf(w, "\t%.2f", res.Speedup(base))
				}
				fmt.Fprintln(w)
			}
			w.Flush()
		}
	}
}
