package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/htm"
	"rtle/internal/mem"
)

// policy derives the shared synchronization policy from the contention
// flags: every method (including the Lock baseline and the STM paths) is
// paced identically, and spurious aborts model the non-conflict HTM
// failures (capacity overflows, interrupts) that drive the paper's
// contended regime.
func (o options) policy() core.Policy {
	return core.Policy{HTM: htm.Config{
		InterleaveEvery: o.interleave,
		SpuriousProb:    o.spurious,
		SpuriousSeed:    o.seed,
	}}
}

// mixes are the paper's operation distributions, written Ins:Rem:Find.
var mixes = []harness.SetMix{
	{InsertPct: 0, RemovePct: 0},
	{InsertPct: 10, RemovePct: 10},
	{InsertPct: 20, RemovePct: 20},
	{InsertPct: 50, RemovePct: 50},
}

func mixLabel(m harness.SetMix) string {
	return fmt.Sprintf("%d:%d:%d", m.InsertPct, m.RemovePct, 100-m.InsertPct-m.RemovePct)
}

// csvRecords accumulates every AVL data point for the -csv flag.
var csvRecords []harness.Record

// runSetPoint runs one AVL data point — a fresh heap, a seeded set, one
// method, one thread count — opt.runs times, reporting the
// median-throughput run (the paper's discipline, §6.2).
func runSetPoint(opt options, method string, keyRange uint64, mix harness.SetMix, threads int) *harness.Result {
	res := harness.Median(opt.runs, func() *harness.Result {
		m := mem.New(harness.DefaultSetHeapWords(keyRange, threads) + 1<<18)
		set := avl.New(m)
		harness.SeedSet(set, keyRange)
		meth := harness.MustBuildMethod(method, m, opt.policy())
		return harness.Run(meth, harness.Config{
			Threads:  threads,
			Duration: opt.dur,
			Seed:     opt.seed,
		}, harness.SetWorkerFactory(set, mix, keyRange))
	})
	if opt.csvPath != "" {
		label := fmt.Sprintf("range=%d mix=%s", keyRange, mixLabel(mix))
		csvRecords = append(csvRecords, res.Record(label))
	}
	return res
}

// flushCSV writes the accumulated data points, if requested.
func flushCSV(opt options) {
	if opt.csvPath == "" || len(csvRecords) == 0 {
		return
	}
	f, err := os.Create(opt.csvPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return
	}
	defer f.Close()
	if err := harness.WriteCSV(f, csvRecords); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
	fmt.Printf("\n%d data points written to %s\n", len(csvRecords), opt.csvPath)
}

// avlSeeded builds a seeded AVL set on m.
func avlSeeded(m *mem.Memory, keyRange uint64) *avl.Set {
	set := avl.New(m)
	harness.SeedSet(set, keyRange)
	return set
}

// newTable returns a tabwriter printing to stdout.
func newTable() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
