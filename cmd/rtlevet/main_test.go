package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"rtle/internal/analysis"
	"rtle/internal/analysis/framework"
)

// buildTool compiles the rtlevet binary into a test temp dir so the
// unitchecker protocol can be exercised against the real executable.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rtlevet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestVersionProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	// cmd/go keys the vet cache on "<name> version <fingerprint>".
	if !strings.HasPrefix(string(out), "rtlevet version ") {
		t.Errorf("-V=full output %q does not start with \"rtlevet version \"", out)
	}
}

func TestFlagsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags output is not valid JSON: %v\n%s", err, out)
	}
	got := map[string]bool{}
	for _, f := range flags {
		if !f.Bool {
			t.Errorf("flag %s not declared Bool; go vet would pass it a value", f.Name)
		}
		got[f.Name] = true
	}
	for _, a := range analysis.Analyzers() {
		if !got[a.Name] {
			t.Errorf("-flags output missing analyzer flag %s", a.Name)
		}
	}
}

// TestVetToolCleanOnCore runs the built binary through the real cmd/go vet
// driver over an annotated production package and requires a clean exit.
func TestVetToolCleanOnCore(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes go vet")
	}
	bin := buildTool(t)
	root, err := framework.ModuleRoot("")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/core/...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool over ./internal/core/... failed: %v\n%s", err, out)
	}
}
