// Command rtlevet runs the rtle static-analysis suite (txbody, abortpath,
// barrierdiscipline, gateorder, loggate, hotalloc, guardmisuse,
// statsatomic — see rtle/internal/analysis) over Go packages. It works in
// two modes:
//
// Standalone, with go list patterns:
//
//	rtlevet ./...
//
// As a vet tool, speaking cmd/go's unitchecker protocol (-V=full, -flags,
// and a JSON *.cfg unit file per package), so the suite composes with the
// standard vet driver and its caching:
//
//	go build -o /tmp/rtlevet rtle/cmd/rtlevet
//	go vet -vettool=/tmp/rtlevet ./...
//
// Pass an analyzer's name as a flag (-txbody, -hotalloc, ...) to run a
// subset of the suite; by default every pass runs. -unusedignores
// additionally reports //rtle:ignore pragmas that suppressed nothing in
// the run, so stale waivers cannot silently outlive the finding they
// excused. Diagnostics go to stderr as file:line:col: analyzer: message;
// the exit status is nonzero when any diagnostic is reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rtle/internal/analysis"
	"rtle/internal/analysis/framework"
)

func main() {
	// The unitchecker protocol's version probe must work even though
	// flag.Parse would reject "-V=full".
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		printVersion()
		return
	}

	suite := analysis.Analyzers()
	enabled := map[string]*bool{}
	for _, a := range suite {
		enabled[a.Name] = flag.Bool(a.Name, false, a.Doc)
	}
	flagsMode := flag.Bool("flags", false, "print the tool's flags as JSON (unitchecker protocol)")
	unusedIgnores := flag.Bool("unusedignores", false, "also report //rtle:ignore pragmas that suppress nothing")
	flag.Parse()

	if *flagsMode {
		printFlags(suite)
		return
	}

	// An explicit subset selection keeps only the named analyzers.
	any := false
	for _, on := range enabled {
		any = any || *on
	}
	if any {
		var subset []*framework.Analyzer
		for _, a := range suite {
			if *enabled[a.Name] {
				subset = append(subset, a)
			}
		}
		suite = subset
	}

	full := !any // every pass ran, so a bare //rtle:ignore with no effect is provably stale
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitCheck(suite, *unusedIgnores, full, args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(suite, *unusedIgnores, full, args))
}

func printVersion() {
	// cmd/go hashes this line into its action cache key, so it must
	// change when the binary does — and when the suite does. Fingerprint
	// both: the executable bytes, and the pass list with per-pass
	// versions, so bumping an Analyzer.Version invalidates vet's cache
	// even on a build that happens to produce identical binary bytes
	// (and the printed line itself documents what ran).
	var passes []string
	for _, a := range analysis.Analyzers() {
		passes = append(passes, fmt.Sprintf("%s@%d", a.Name, a.Version))
	}
	suite := strings.Join(passes, "+")
	h := sha256.New()
	io.WriteString(h, suite)
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f) // best-effort: a constant ID only weakens caching
			f.Close()
		}
	}
	fmt.Printf("rtlevet version devel passes=%s buildID=%x\n", suite, h.Sum(nil)[:16])
}

func printFlags(suite []*framework.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range suite {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	flags = append(flags, jsonFlag{Name: "unusedignores", Bool: true, Usage: "also report //rtle:ignore pragmas that suppress nothing"})
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlevet:", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// standalone loads patterns through the module-aware loader and runs the
// suite over every matched package.
func standalone(suite []*framework.Analyzer, unusedIgnores, full bool, patterns []string) int {
	root, err := framework.ModuleRoot("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlevet:", err)
		return 1
	}
	loader := framework.NewLoader(root)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlevet:", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "rtlevet: %s: type error: %v\n", pkg.PkgPath, terr)
			exit = 1
		}
	}
	diags, err := framework.RunAnalyzers(suite, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlevet:", err)
		return 1
	}
	if unusedIgnores {
		diags = append(diags, framework.UnusedIgnores(suite, pkgs, full)...)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		exit = 1
	}
	return exit
}

// --- unitchecker protocol ---------------------------------------------------

// vetConfig mirrors the JSON unit file cmd/go feeds to -vettool programs
// (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

// unitCheck analyzes the single compilation unit described by cfgFile.
func unitCheck(suite []*framework.Analyzer, unusedIgnores, full bool, cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlevet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rtlevet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The suite exports no facts, so the vetx output is always empty —
	// but it must exist for cmd/go's action cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "rtlevet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // facts-only request for a dependency: nothing to do
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "rtlevet:", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in unit config", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, err := range typeErrs {
			fmt.Fprintln(os.Stderr, "rtlevet:", err)
		}
		return 1
	}

	pkg := &framework.Package{
		PkgPath:   cfg.ImportPath,
		Module:    cfg.ModulePath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	if pkg.Module == "" {
		pkg.Module = "rtle"
	}
	diags, err := framework.RunAnalyzers(suite, []*framework.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlevet:", err)
		return 1
	}
	if unusedIgnores {
		diags = append(diags, framework.UnusedIgnores(suite, []*framework.Package{pkg}, full)...)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
