// Command cctsabench runs the paper's §6.4 ccTSA application benchmark
// for one configuration: the original-style fine-grained-locking
// assembler and/or the transactified variant under a chosen method.
//
// Example:
//
//	cctsabench -threads 8 -genome 100000 -method "FG-TLE(8192)" -variant both
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtle/internal/cctsa"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/mem"
)

func main() {
	method := flag.String("method", "TLE", "synchronization method for the transactified variant")
	variant := flag.String("variant", "both", "original, transactified, or both")
	threads := flag.Int("threads", 4, "worker threads")
	genomeLen := flag.Int("genome", 60000, "synthetic genome length (bp)")
	coverage := flag.Float64("coverage", 8, "read coverage")
	errRate := flag.Float64("errors", 0, "per-base error rate")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	cfg := cctsa.Config{
		GenomeLen: *genomeLen,
		Coverage:  *coverage,
		ErrorRate: *errRate,
		Threads:   *threads,
		Seed:      uint64(*seed),
	}
	if *errRate > 0 {
		cfg.MinCount = 2
	}
	in := cctsa.Prepare(cfg)
	fmt.Printf("input: genome %d bp, %d reads, k=27, %d threads\n", len(in.Genome), len(in.Reads), *threads)

	show := func(r *cctsa.Result) {
		fmt.Printf("%-30s build %v, process %v, total %v — %d k-mers, %d contigs (longest %d)\n",
			r.Variant,
			r.BuildTime.Round(time.Millisecond), r.ProcessTime.Round(time.Millisecond),
			r.Total.Round(time.Millisecond), r.DistinctKmers, len(r.Contigs), r.Longest)
	}

	if *variant == "original" || *variant == "both" {
		show(in.RunOriginal())
	}
	if *variant == "transactified" || *variant == "both" {
		res := in.RunTransactified(func(m *mem.Memory) core.Method {
			meth, err := harness.BuildMethod(*method, m, core.Policy{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "cctsabench:", err)
				os.Exit(2)
			}
			return meth
		})
		show(res)
		st := res.Stats
		if st.Ops > 0 {
			fmt.Printf("%-30s sync: %d blocks, fast=%d slow=%d lock=%d (fallback %.4f%%)\n",
				"", st.Ops, st.FastCommits, st.SlowCommits, st.LockRuns,
				100*float64(st.LockRuns)/float64(st.Ops))
		}
	}
}
