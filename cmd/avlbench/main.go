// Command avlbench runs a single AVL-set data point — the paper's §6.2
// micro-benchmark — with full control over the axes, and prints throughput
// plus the execution-path and abort breakdown. It is the tool for
// exploring one configuration in depth; cmd/experiments sweeps the full
// grids.
//
// Example:
//
//	avlbench -method "FG-TLE(1024)" -threads 8 -range 8192 -insert 20 -remove 20 -dur 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/htm"
	"rtle/internal/mem"
)

func main() {
	method := flag.String("method", "TLE", "synchronization method (Lock, TLE, RW-TLE, FG-TLE(N), FG-TLE(adaptive), NOrec, RHNOrec)")
	threads := flag.Int("threads", 4, "worker threads")
	keyRange := flag.Uint64("range", 8192, "key range (set size is ~half)")
	insert := flag.Int("insert", 20, "insert percentage")
	remove := flag.Int("remove", 20, "remove percentage")
	dur := flag.Duration("dur", time.Second, "run duration")
	attempts := flag.Int("attempts", core.DefaultAttempts, "HTM attempts before lock fallback")
	lazy := flag.Bool("lazy", false, "lazy lock subscription on the slow path (§5)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	if *insert+*remove > 100 {
		fmt.Fprintln(os.Stderr, "avlbench: insert + remove must be at most 100")
		os.Exit(2)
	}
	policy := core.Policy{Attempts: *attempts, LazySubscription: *lazy}

	m := mem.New(harness.DefaultSetHeapWords(*keyRange, *threads) + 1<<18)
	set := avl.New(m)
	harness.SeedSet(set, *keyRange)
	meth, err := harness.BuildMethod(*method, m, policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avlbench:", err)
		os.Exit(2)
	}

	res := harness.Run(meth, harness.Config{
		Threads: *threads, Duration: *dur, Seed: uint64(*seed),
	}, harness.SetWorkerFactory(set, harness.SetMix{InsertPct: *insert, RemovePct: *remove}, *keyRange))

	if err := set.CheckInvariants(core.Direct(m)); err != nil {
		fmt.Fprintln(os.Stderr, "avlbench: TREE CORRUPTED:", err)
		os.Exit(1)
	}

	st := res.Total
	fmt.Printf("method      %s\n", res.Method)
	fmt.Printf("threads     %d\n", res.Threads)
	fmt.Printf("workload    %d:%d:%d over range %d for %v\n", *insert, *remove, 100-*insert-*remove, *keyRange, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput  %.0f ops/ms\n", res.Throughput())
	fmt.Printf("paths       fast=%d slow=%d lock=%d stmHTM=%d stmLock=%d stmRO=%d\n",
		st.FastCommits, st.SlowCommits, st.LockRuns, st.STMCommitsHTM, st.STMCommitsLock, st.STMCommitsRO)
	fmt.Printf("fast aborts conflict=%d capacity=%d explicit=%d unsupported=%d (subscription=%d)\n",
		st.FastAborts[htm.Conflict], st.FastAborts[htm.Capacity], st.FastAborts[htm.Explicit],
		st.FastAborts[htm.Unsupported], st.SubscriptionAborts)
	fmt.Printf("slow aborts conflict=%d capacity=%d explicit=%d\n",
		st.SlowAborts[htm.Conflict], st.SlowAborts[htm.Capacity], st.SlowAborts[htm.Explicit])
	if st.LockRuns > 0 {
		fmt.Printf("lock        held %v total, %.0f lock-path ops/ms of held time, %.0f slow-HTM ops/ms of held time\n",
			res.LockHold().Round(time.Microsecond), res.LockPathThroughput(), res.SlowHTMThroughput())
	}
	if st.STMStarts > 0 {
		fmt.Printf("stm         %d starts, %.2f validations/tx, %v in software\n",
			st.STMStarts, res.ValidationsPerTx(), time.Duration(st.STMTimeNanos).Round(time.Microsecond))
	}
}
