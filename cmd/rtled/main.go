// Command rtled serves one elided data structure (AVL set, hash map, or
// bank) over TCP behind any of the repository's synchronization methods,
// speaking the rtled/1 pipelined binary protocol (see internal/server's
// package documentation). With -shards N the key space is partitioned into
// N independent instances by consistent hash, each with its own bounded
// queue and worker pool; single-key requests route to their shard and
// cross-shard requests take an ordered-drain slow path. Each shard's
// worker pool coalesces pending single operations into shared atomic
// blocks under an adaptive window capped by -coalesce; a full queue
// answers StatusBusy with a queue-depth-aware retry hint. SIGINT/SIGTERM
// drain gracefully: accepted requests on every shard finish and flush
// before the listener and connections close.
//
// With -http it serves /metrics (the obs registry's rtle_* execution
// series concatenated with the wire-level rtled_* series) and /snapshot
// (registry JSON) for live scraping. With -fault-plan (inline JSON or
// @file) a fault director is wired into the method, so chaos experiments
// run over the wire exactly as they do in-process.
//
// Replication: a primary started with -repl-ack or -repl-log appends every
// committed mutating block to an ordered log (file-backed when -repl-log
// names a path) and streams it to subscribed replicas; -repl-ack sync
// holds each write's response until a replica acknowledged its entry. A
// server started with -replica-of follows that primary, answering
// StatusNotPrimary to clients until SIGUSR1 or POST /promote flips it to
// primary — the failover handshake scripts/e2e.sh exercises with a SIGKILL
// mid-run.
//
// Snapshots: every server answers OpSnapshot with a consistent cut of its
// full state, taken under the shard gates and stamped with the replication
// log sequence (warm checker seeding, replica fast-bootstrap). -snap-file
// names the durable snapshot restored at boot and rewritten by compaction
// (-compact-every N, or POST /compact), which truncates the file log below
// the snapshot's sequence; POST /reshard?shards=M rebuilds the serving
// plane at M shards through the same capture/restore path, live.
//
// Examples:
//
//	rtled -workload set -method "FG-TLE(256)" -workers 8
//	rtled -workload map -shards 4 -workers 2 -http :9090
//	rtled -workload bank -keys 16 -method RHNOrec -http :9090
//	rtled -addr 127.0.0.1:0 -fault-plan '{"seed":7,"begin_prob":0.1}'
//	rtled -workload map -repl-ack sync -repl-log /tmp/rtle.log
//	rtled -addr 127.0.0.1:7633 -workload map -replica-of 127.0.0.1:7632
//	rtled -workload map -repl-log /tmp/rtle.log -snap-file /tmp/rtle.snap -compact-every 10000
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rtle/internal/core"
	"rtle/internal/fault"
	"rtle/internal/obs"
	"rtle/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7632", "TCP listen address (port 0 picks a free port)")
	workload := flag.String("workload", "set", "served data structure: "+strings.Join(server.Workloads, ", "))
	method := flag.String("method", "FG-TLE(256)", "synchronization method (Lock, TLE, HLE, RW-TLE, FG-TLE(N), FG-TLE(adaptive), ALE(N), NOrec, RHNOrec)")
	shards := flag.Int("shards", 1, "independent ADT partitions (consistent-hash routed)")
	workers := flag.Int("workers", 4, "worker pool size per shard")
	queue := flag.Int("queue", 256, "accepted-request queue bound per shard (backpressure beyond)")
	coalesce := flag.Int("coalesce", 8, "adaptive coalesce window cap (single ops per shared atomic block)")
	keys := flag.Int("keys", 0, "key space (set/map) or account count (bank); 0 picks the default")
	attempts := flag.Int("attempts", core.DefaultAttempts, "HTM attempts before lock fallback")
	lazy := flag.Bool("lazy", false, "lazy lock subscription on the slow path")
	planStr := flag.String("fault-plan", "", "fault plan: inline JSON or @file")
	httpAddr := flag.String("http", "", "serve /metrics, /snapshot and /promote on this address (e.g. :9090)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
	replicaOf := flag.String("replica-of", "", "follow the primary at this address (serve StatusNotPrimary until promoted)")
	replAck := flag.String("repl-ack", "", "replication ack mode: async or sync (implies replication)")
	replLog := flag.String("repl-log", "", "file-backed replication log path (implies replication; empty keeps the log in memory)")
	snapFile := flag.String("snap-file", "", "durable snapshot path: restored at boot, rewritten by compaction")
	compactEvery := flag.Int("compact-every", 0, "auto-compact when the replication log holds this many entries above its floor (needs -snap-file; implies replication)")
	flag.Parse()

	var plan *fault.Plan
	if *planStr != "" {
		text := *planStr
		if strings.HasPrefix(text, "@") {
			b, err := os.ReadFile(text[1:])
			if err != nil {
				fatal(err)
			}
			text = string(b)
		}
		p, err := fault.ParsePlan(text)
		if err != nil {
			fatal(err)
		}
		plan = &p
	}

	reg := obs.NewRegistry(obs.Config{})
	srv, err := server.New(server.Config{
		Addr:       *addr,
		Workload:   *workload,
		Method:     *method,
		Shards:     *shards,
		Workers:    *workers,
		QueueDepth: *queue,
		Coalesce:   *coalesce,
		Keys:       *keys,
		Policy:     core.Policy{Attempts: *attempts, LazySubscription: *lazy},
		Registry:   reg,
		Plan:       plan,
		ReplicaOf:    *replicaOf,
		ReplAck:      *replAck,
		ReplLog:      *replLog,
		SnapFile:     *snapFile,
		CompactEvery: *compactEvery,
	})
	if err != nil {
		fatal(err)
	}

	bound, err := srv.Listen()
	if err != nil {
		fatal(err)
	}
	// The e2e harness parses this line to find the bound port.
	fmt.Printf("rtled: listening on %s (%s over %s, %d shards x %d workers)\n",
		bound, srv.MethodName(), srv.Workload(), srv.Shards(), *workers)
	if *replicaOf != "" {
		fmt.Fprintf(os.Stderr, "rtled: replica of %s (SIGUSR1 or POST /promote to take over)\n", *replicaOf)
	}

	var admin *server.AdminServer
	if *httpAddr != "" {
		admin, err = server.StartAdmin(*httpAddr, newMux(reg, srv))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rtled: serving /metrics and /snapshot on %s\n", admin.Addr())
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGUSR1)
loop:
	for {
		select {
		case s := <-sig:
			if s == syscall.SIGUSR1 {
				promote(srv)
				continue
			}
			fmt.Fprintf(os.Stderr, "rtled: %v, draining\n", s)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "rtled: drain:", err)
			}
			if admin != nil {
				if err := admin.Shutdown(ctx); err != nil {
					fmt.Fprintln(os.Stderr, "rtled: admin drain:", err)
				}
			}
			<-done
			break loop
		case err := <-done:
			if err != nil {
				fatal(err)
			}
			break loop
		}
	}

	m := srv.Metrics()
	fmt.Fprintf(os.Stderr, "rtled: served %d sections, %d coalesced ops, %d cross-shard ops, %d busy rejections\n",
		m.Sections(), m.Coalesced(), m.CrossShard(), m.Responses(server.StatusBusy))
	if d := srv.Director(); d != nil {
		fmt.Fprintf(os.Stderr, "rtled: fault director injected %d aborts, %d lock spikes\n",
			d.TotalInjected(), d.LockSpins())
	}
}

// promote flips a replica to primary, logging the takeover sequence on
// stdout so harnesses can confirm the handoff landed.
func promote(srv *server.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	seq, err := srv.Promote(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtled: promote:", err)
		return
	}
	fmt.Printf("rtled: promoted to primary at seq %d\n", seq)
}

// newMux builds the admin handler: /metrics concatenates the execution
// registry's Prometheus series with the wire-level server series under one
// scrape; /snapshot serves the registry as JSON; POST /promote flips a
// replica to primary (the HTTP twin of SIGUSR1, for orchestrators without
// signal access); POST /reshard?shards=M rebuilds the serving plane at M
// shards through a gate-held snapshot, live; POST /compact writes the
// durable snapshot and truncates the replication log below it.
func newMux(reg *obs.Registry, srv *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		// A write error here means the scraper hung up; nothing to do.
		_ = reg.Snapshot().WritePrometheus(w)
		// Same scrape, same hung-up scraper; nothing to do.
		_ = srv.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A write error here means the client hung up; nothing to do.
		_ = reg.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "promote requires POST", http.StatusMethodNotAllowed)
			return
		}
		seq, err := srv.Promote(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Printf("rtled: promoted to primary at seq %d\n", seq)
		fmt.Fprintf(w, "promoted to primary at seq %d\n", seq)
	})
	mux.HandleFunc("/reshard", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "reshard requires POST", http.StatusMethodNotAllowed)
			return
		}
		n, err := strconv.Atoi(r.URL.Query().Get("shards"))
		if err != nil || n < 1 {
			http.Error(w, "reshard requires ?shards=M with M >= 1", http.StatusBadRequest)
			return
		}
		if err := srv.Reshard(n); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Printf("rtled: resharded to %d shards\n", n)
		fmt.Fprintf(w, "resharded to %d shards\n", n)
	})
	mux.HandleFunc("/compact", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "compact requires POST", http.StatusMethodNotAllowed)
			return
		}
		floor, err := srv.Compact()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Printf("rtled: compacted replication log below seq %d\n", floor)
		fmt.Fprintf(w, "compacted replication log below seq %d\n", floor)
	})
	return mux
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "rtled:", v)
	os.Exit(2)
}
