// Command rtleload drives load against a live rtled server and validates
// what comes back over the wire: Conns×Pipeline sequential logical clients
// multiplexed over Conns pipelined connections record a ticket-stamped
// history of every single operation, and after the run the history is
// checked for linearizability with internal/check's WGL checker (per-key
// partitions for set/map, whole-history for bank). Read-only witness
// batches additionally validate the batch atomicity contract (duplicate
// reads inside one batch must agree; a bank batch must observe conserved
// total money). StatusBusy rejections are absorbed by retry below the
// recording layer.
//
// The process exits non-zero if the history is not linearizable, a witness
// is violated, or the run errors — so CI can gate on it directly.
//
// -check seeds its sequential models from a pre-run server snapshot when
// the server advertises FeatureSnapshot: the consistent cut at log seq S
// stands in for the empty initial state, so checked runs compose — a
// second run against the same warm server is as sound as the first. A
// server without snapshot support falls back to the old contract, where
// -check is only sound against a freshly started server (empty set/map,
// every bank account at par); checking a warm server then reports false
// violations. Load without -check has no restriction either way.
//
// Failover runs: -addr accepts a comma-separated address list (primary
// first). With more than one address each connection becomes a failover
// client that rides through server death, an operation whose response was
// lost is recorded as pending — the checker must then explain it both as
// executed and as never-executed — and StatusNotPrimary rejections are
// retried until a promotion lands. The longest disruption window and the
// pending/retry counts are reported after the run.
//
// Examples:
//
//	rtleload -addr 127.0.0.1:7632 -workload set -conns 4 -pipeline 8 -ops 20000
//	rtleload -workload map -read-pct 50 -batch-pct 10 -check=true
//	rtleload -workload bank -keys 16 -conns 2 -pipeline 4 -ops 2000
//	rtleload -workload set -rate 50000 -duration 5s -check=false
//	rtleload -addr 127.0.0.1:7632,127.0.0.1:7633 -workload map -ops 40000
//	rtleload -workload set -key-dist zipf -zipf-s 1.2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rtle/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7632", "rtled server address, or a comma-separated failover list (primary first)")
	workload := flag.String("workload", "set", "served data structure: "+strings.Join(server.Workloads, ", "))
	conns := flag.Int("conns", 4, "TCP connections")
	pipeline := flag.Int("pipeline", 8, "pipelined slots per connection")
	ops := flag.Int("ops", 4000, "recorded single operations across all slots")
	duration := flag.Duration("duration", 0, "optional deadline for the run (0 = ops-bounded only)")
	rate := flag.Int("rate", 0, "open-loop aggregate ops/sec (0 = closed loop)")
	readPct := flag.Int("read-pct", 90, "read percentage of single operations")
	batchPct := flag.Int("batch-pct", 0, "percentage of issues that send a witness batch")
	batchSize := flag.Int("batch-size", 8, "witness batch length (set/map)")
	keys := flag.Int("keys", 0, "key space (set/map) or account count (bank); must match the server; 0 picks the default")
	keyDist := flag.String("key-dist", "uniform", "key distribution: uniform or zipf (key 0 hottest)")
	zipfS := flag.Float64("zipf-s", 1.1, "zipf exponent (with -key-dist zipf; larger is more skewed)")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	checkFlag := flag.Bool("check", true, "check the recorded history for linearizability")
	flag.Parse()

	addrs := strings.Split(*addr, ",")
	cfg := server.LoadConfig{
		Addrs:      addrs,
		Workload:   *workload,
		Conns:      *conns,
		Pipeline:   *pipeline,
		Ops:        *ops,
		Duration:   *duration,
		RatePerSec: *rate,
		ReadPct:    *readPct,
		BatchPct:   *batchPct,
		BatchSize:  *batchSize,
		Keys:       *keys,
		KeyDist:    *keyDist,
		ZipfS:      *zipfS,
		Seed:       *seed,
		Check:      *checkFlag,
	}
	fmt.Fprintf(os.Stderr, "rtleload: %s on %s, %d conns x %d pipeline, %d ops, %d%% reads, %d%% batches\n",
		*workload, *addr, *conns, *pipeline, *ops, *readPct, *batchPct)

	res, err := server.RunLoad(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("rtleload: server advertises %d shard(s)\n", res.Shards)
	fmt.Printf("rtleload: %d ops in %v (%.0f ops/sec), %d witness batches, %d busy retries, %d rejected\n",
		res.Ops, res.Elapsed.Round(time.Millisecond), res.Throughput(), res.Batches, res.BusyRetries, res.Rejected)
	fmt.Printf("rtleload: latency p50 %.3gms p99 %.3gms max-bucket %.3gms\n",
		res.Percentile(0.50)*1e3, res.Percentile(0.99)*1e3, res.Percentile(1.0)*1e3)
	if len(addrs) > 1 {
		fmt.Printf("rtleload: failover: %d reconnects, %d pending (cut) ops, %d not-primary retries, longest outage %v\n",
			res.Reconnects, res.Cut, res.NotPrimaryRetries, res.FailoverWindow.Round(time.Millisecond))
	}

	exit := 0
	if len(res.WitnessViolations) > 0 {
		exit = 1
		for _, v := range res.WitnessViolations {
			fmt.Println("rtleload: WITNESS VIOLATION:", v)
		}
	}
	if res.Checked {
		if res.Seeded {
			fmt.Printf("rtleload: check seeded from server snapshot at seq %d\n", res.SeedSeq)
		} else {
			fmt.Println("rtleload: check unseeded (server lacks snapshot support); sound only against a fresh server")
		}
		if res.Linearizable {
			fmt.Println("rtleload: history is linearizable")
		} else {
			exit = 1
			fmt.Println("rtleload: NOT LINEARIZABLE:", res.CheckDetail)
		}
	}
	os.Exit(exit)
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "rtleload:", v)
	os.Exit(2)
}
