// Command rtlefuzz fuzzes the synchronization methods with random fault
// plans: each round derives a fault.Plan from the master seed, runs every
// selected method over every selected ADT workload under that plan, and
// checks the recorded history for linearizability (internal/check). A
// failing combination is shrunk to a minimal reproducing plan by zeroing
// and halving plan fields while the failure persists.
//
// Determinism: all plans are generated up front, purely from -seed, before
// any workload executes — rerunning with the same -seed replays
// byte-identical plans (compare the "plan" lines of two runs). Individual
// trial outcomes still depend on goroutine scheduling, which is exactly
// what the shrinker's repeated trials account for.
//
// Usage:
//
//	rtlefuzz -seed 1 -rounds 8                  # fuzz 8 random plans
//	rtlefuzz -plan '{"seed":7,"begin_prob":0.5}' # replay one plan
//	rtlefuzz -methods TLE,NOrec -adts bank       # restrict the matrix
//	rtlefuzz -guards -rounds 4                   # fuzz the elision guards
//
// With -guards the roster becomes check.GuardVariants and every trial
// drives the workload through rtle.Mutex / rtle.RWMutex sections (mixed
// closure and bracket forms) instead of method threads; failing plans
// shrink exactly as in method mode. Guard variant names ("Guard(TLE)",
// "Guard(RW-TLE)") are also accepted directly in -methods.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rtle/internal/check"
	"rtle/internal/core"
	"rtle/internal/fault"
	"rtle/internal/guard"
	"rtle/internal/harness"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "master seed; all fault plans derive from it")
		rounds  = flag.Int("rounds", 8, "number of random plans to fuzz")
		threads = flag.Int("threads", 4, "worker threads per trial")
		ops     = flag.Int("ops", 120, "operations per thread per trial")
		methods = flag.String("methods", strings.Join(check.ChaosMethods, ","),
			"comma-separated method names to fuzz")
		adts   = flag.String("adts", strings.Join(check.Workloads, ","), "comma-separated ADT workloads")
		guards = flag.Bool("guards", false,
			"fuzz the elision guards (check.GuardVariants) instead of the method roster")
		planStr = flag.String("plan", "", "replay this single plan (JSON) instead of fuzzing")
		shrink  = flag.Bool("shrink", true, "shrink failing plans to minimal reproducers")
		retries = flag.Int("retries", 3, "trials per plan when confirming a shrink step")
	)
	flag.Parse()

	f := &fuzzer{
		threads: *threads,
		ops:     *ops,
		methods: splitList(*methods),
		adts:    splitList(*adts),
		retries: *retries,
	}
	if *guards {
		f.methods = append([]string(nil), check.GuardVariants...)
	}
	for _, kind := range f.adts {
		found := false
		for _, w := range check.Workloads {
			found = found || w == kind
		}
		if !found {
			fatalf("unknown ADT %q (have %s)", kind, strings.Join(check.Workloads, ", "))
		}
	}

	var plans []fault.Plan
	if *planStr != "" {
		p, err := fault.ParsePlan(*planStr)
		if err != nil {
			fatalf("%v", err)
		}
		plans = []fault.Plan{p}
	} else {
		// Generate every plan before running anything: the plan
		// sequence is a pure function of -seed.
		sm := rng.NewSplitMix64(*seed)
		for i := 0; i < *rounds; i++ {
			plans = append(plans, randomPlan(sm.Next()))
		}
	}

	failures := 0
	for i, plan := range plans {
		fmt.Printf("round %d/%d plan %s\n", i+1, len(plans), plan)
		for _, methodName := range f.methods {
			for _, kind := range f.adts {
				if err := f.trial(plan, methodName, kind, 0); err == nil {
					continue
				}
				failures++
				fmt.Printf("FAIL %s over %s\n", methodName, kind)
				minimal := plan
				if *shrink {
					minimal = f.shrink(plan, methodName, kind)
				}
				fmt.Printf("reproduce with:\n  rtlefuzz -threads %d -ops %d -methods %q -adts %q -plan '%s'\n",
					f.threads, f.ops, methodName, kind, minimal)
			}
		}
	}
	if failures > 0 {
		fatalf("%d failing method/ADT combinations", failures)
	}
	fmt.Printf("ok: %d plans x %d methods x %d ADTs linearizable\n",
		len(plans), len(f.methods), len(f.adts))
}

type fuzzer struct {
	threads, ops int
	methods      []string
	adts         []string
	retries      int
}

// trial runs one (plan, method, ADT) combination and returns an error if
// the recorded history is not linearizable. run salts the workload seed so
// shrink confirmation retries explore different schedules.
func (f *fuzzer) trial(plan fault.Plan, methodName, kind string, run int) error {
	d := fault.NewDirector(plan)
	policy := core.Policy{Attempts: 5, HTM: htm.Config{InterleaveEvery: 8}}
	d.Configure(&policy)
	m := mem.New(1 << 18)
	cfg := check.RunConfig{
		Threads: f.threads, OpsPerThread: f.ops,
		Seed: plan.Seed + uint64(run)*0x9e3779b97f4a7c15,
	}
	var (
		h     *check.History
		model check.Model
		err   error
	)
	if strings.HasPrefix(methodName, "Guard(") {
		h, model, err = check.RunGuardWorkload(kind, methodName, m,
			guard.Config{Policy: policy}, cfg)
	} else {
		var method core.Method
		method, err = harness.BuildMethod(methodName, m, policy)
		if err != nil {
			fatalf("%v", err)
		}
		h, model, err = check.RunWorkload(kind, method, m, cfg)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if !check.CheckLinearizable(model, h.Events()) {
		return fmt.Errorf("history not linearizable")
	}
	return nil
}

// reproduces reports whether plan still triggers the failure within the
// configured number of trials.
func (f *fuzzer) reproduces(plan fault.Plan, methodName, kind string) bool {
	for r := 0; r < f.retries; r++ {
		if f.trial(plan, methodName, kind, r) != nil {
			return true
		}
	}
	return false
}

// shrink greedily minimizes a failing plan: for each field it tries
// removing the fault entirely, then halving its magnitude, keeping any
// candidate that still reproduces. It loops until a full pass changes
// nothing.
func (f *fuzzer) shrink(plan fault.Plan, methodName, kind string) fault.Plan {
	fmt.Printf("shrinking %s ...\n", plan)
	for changed := true; changed; {
		changed = false
		for _, cand := range shrinkCandidates(plan) {
			if cand == plan {
				continue
			}
			if f.reproduces(cand, methodName, kind) {
				plan = cand
				changed = true
				fmt.Printf("  -> %s\n", plan)
				break
			}
		}
	}
	return plan
}

// shrinkCandidates yields one-step simplifications of plan, most aggressive
// first.
func shrinkCandidates(p fault.Plan) []fault.Plan {
	var out []fault.Plan
	add := func(mut func(*fault.Plan)) {
		c := p
		mut(&c)
		out = append(out, c)
	}
	// Drop whole fault families.
	add(func(c *fault.Plan) { c.BeginProb, c.AccessProb, c.CommitProb = 0, 0, 0 })
	add(func(c *fault.Plan) { c.NthAccess, c.NthEvery = 0, 0 })
	add(func(c *fault.Plan) {
		c.SqueezeEvery, c.SqueezeLen, c.SqueezeReadLines, c.SqueezeWriteLines = 0, 0, 0, 0
	})
	add(func(c *fault.Plan) { c.StormEvery, c.StormLen = 0, 0 })
	add(func(c *fault.Plan) { c.LockSpikeEvery, c.LockSpikeSpins = 0, 0 })
	// Halve individual magnitudes.
	add(func(c *fault.Plan) { c.BeginProb /= 2 })
	add(func(c *fault.Plan) { c.AccessProb /= 2 })
	add(func(c *fault.Plan) { c.CommitProb /= 2 })
	add(func(c *fault.Plan) { c.StormLen /= 2 })
	add(func(c *fault.Plan) { c.SqueezeLen /= 2 })
	add(func(c *fault.Plan) { c.LockSpikeSpins /= 2 })
	// Relax frequencies (rarer windows are simpler schedules).
	add(func(c *fault.Plan) { c.StormEvery *= 2 })
	add(func(c *fault.Plan) { c.SqueezeEvery *= 2 })
	add(func(c *fault.Plan) { c.NthEvery *= 2 })
	return out
}

// randomPlan derives one fuzz plan from a per-round seed. Roughly half the
// fault families are active in any given plan.
func randomPlan(seed uint64) fault.Plan {
	sm := rng.NewSplitMix64(seed)
	coin := func() bool { return sm.Next()%2 == 0 }
	p := fault.Plan{Seed: sm.Next(), Reason: htm.Spurious}
	if coin() {
		p.BeginProb = float64(1+sm.Next()%8) / 100
	}
	if coin() {
		p.AccessProb = float64(1+sm.Next()%10) / 1000
	}
	if coin() {
		p.CommitProb = float64(1+sm.Next()%6) / 100
	}
	if coin() {
		p.NthAccess = int(2 + sm.Next()%10)
		p.NthEvery = int(3 + sm.Next()%6)
	}
	if coin() {
		p.SqueezeEvery = int(20 + sm.Next()%60)
		p.SqueezeLen = int(1 + sm.Next()%6)
		p.SqueezeReadLines = int(2 + sm.Next()%6)
		p.SqueezeWriteLines = int(1 + sm.Next()%4)
	}
	if coin() {
		p.StormEvery = int(20 + sm.Next()%60)
		p.StormLen = int(1 + sm.Next()%5)
	}
	if coin() {
		p.LockSpikeEvery = int(4 + sm.Next()%12)
		p.LockSpikeSpins = int(100 + sm.Next()%400)
	}
	return p
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rtlefuzz: "+format+"\n", args...)
	os.Exit(1)
}
