package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestBenchFileSchemaRoundTrip pins the BENCH_<n>.json wire schema: a
// section-only file (no method grid) must serialize "results": [] rather
// than null, every section must survive an encode/decode round trip
// unchanged, and the section keys must appear under their documented names.
func TestBenchFileSchemaRoundTrip(t *testing.T) {
	in := benchFile{
		Schema:    "rtle-bench/v1",
		WrittenAt: "2026-08-08T00:00:00Z",
		Results:   []benchResult{},
		Config:    benchConfig{Workload: "avl-set", KeyRange: 8192, DurationMS: 500, Attempts: 8, Seed: 1},
		Wire: []wireResult{{
			Workload: "map", Method: "FG-TLE(256)",
			Shards: 4, Workers: 2, Coalesce: 8, GOMAXPROCS: 1,
			Conns: 8, Pipeline: 4, ReadPct: 90,
			Ops: 30000, ElapsedNS: 123456789, ThroughputOpsPerSec: 243000.5,
			BusyRetries: 3, BusyRetryRate: 0.0001,
			P50MS: 0.21, P99MS: 1.75,
			AffineOps: 29500, AvgWriteBatchFrames: 6.2,
		}},
	}

	raw, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}

	// The generic view: "results" must be an array even when empty, and the
	// wire cells must carry the new grid axes under their documented keys.
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatal(err)
	}
	results, ok := generic["results"].([]any)
	if !ok {
		t.Fatalf(`"results" is %T (%v), want a JSON array — a section-only run must not emit null`, generic["results"], generic["results"])
	}
	if len(results) != 0 {
		t.Fatalf(`"results" has %d entries, want 0`, len(results))
	}
	wire, ok := generic["wire"].([]any)
	if !ok || len(wire) != 1 {
		t.Fatalf(`"wire" is %T with %v entries, want a 1-entry array`, generic["wire"], len(wire))
	}
	cell := wire[0].(map[string]any)
	for _, key := range []string{
		"workload", "method", "shards", "workers", "coalesce", "gomaxprocs",
		"conns", "pipeline", "read_pct", "rate_per_sec", "ops", "elapsed_ns",
		"throughput_ops_per_sec", "busy_retries", "busy_retry_rate",
		"p50_ms", "p99_ms", "affine_ops", "avg_write_batch_frames",
	} {
		if _, present := cell[key]; !present {
			t.Errorf("wire cell lost key %q", key)
		}
	}

	// The typed view: decoding back must reproduce the input exactly.
	var back benchFile
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, back) {
		t.Errorf("round trip changed the file:\n in: %+v\nout: %+v", in, back)
	}

	// Absent sections must stay absent, not appear as empty arrays: the
	// schema distinguishes "sweep not run" from "sweep ran and was empty".
	for _, key := range []string{"guard", "repl"} {
		if _, present := generic[key]; present {
			t.Errorf("omitted section %q serialized anyway", key)
		}
	}
}

// TestNextBenchPath pins the ordinal policy: one past the highest existing
// ordinal, never slotting into a gap below a committed file.
func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_0.json", "BENCH_2.json", "BENCH_7.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_8.json"); got != want {
		t.Errorf("nextBenchPath = %q, want %q (gaps below the maximum must stay unused)", got, want)
	}
}
