// Command rtlebench sweeps a method x thread-count grid over the AVL-set
// micro-benchmark (the paper's §6.2 axes) and reports throughput and abort
// rate per cell. With -json it also writes the grid to BENCH_<n>.json —
// picking the first unused index in the output directory — so successive
// runs accumulate a machine-readable performance trajectory.
//
// With -wire it additionally sweeps the serving layer: for each shard
// count in -wire-shards it boots an in-process rtled server (fresh per
// cell — measurements never bleed between cells), drives it with the load
// generator over real loopback TCP, and records wire throughput, p50/p99
// latency, and the busy-retry rate into the file's "wire" section. A
// positive -wire-rate adds an open-loop cell per shard count: arrivals at
// that fixed aggregate rate, so the latency columns expose queueing delay
// instead of closed-loop self-throttling.
//
// With -guard it additionally sweeps the elision guards: rtle.Mutex and
// rtle.RWMutex (closure forms) against bare sync.Mutex/sync.RWMutex and
// the raw TLE/RW-TLE Methods on a shared counter bank, across goroutine
// counts and read mixes, recording throughput and the fast-path commit
// ratio into the file's "guard" section.
//
// With -repl it additionally sweeps the replication ack spectrum: the same
// closed-loop load against an unreplicated server ("off"), an
// async-replicated pair, and a sync-replicated pair, recording throughput,
// latency, and the replica's final apply lag into the file's "repl"
// section — the price of each durability level, measured on one machine.
//
// The JSON schema is documented in README.md ("Benchmark JSON schema").
//
// Examples:
//
//	rtlebench -methods TLE,RW-TLE,FG-TLE(256) -threads 1,2,4,8 -dur 500ms -json
//	rtlebench -wire -wire-shards 1,2,4 -wire-rate 40000 -json
//	rtlebench -methods '' -guard -json
//	rtlebench -methods '' -repl -repl-ops 60000 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/server"
)

// benchFile is the top-level structure of a BENCH_<n>.json file.
type benchFile struct {
	Schema    string        `json:"schema"` // "rtle-bench/v1"
	WrittenAt string        `json:"written_at"`
	Config    benchConfig   `json:"config"`
	Results   []benchResult `json:"results"`
	// Wire holds the serving-layer sweep (-wire), absent otherwise.
	Wire []wireResult `json:"wire,omitempty"`
	// Guard holds the elision-guard sweep (-guard), absent otherwise:
	// rtle.Mutex/rtle.RWMutex vs sync locks vs raw Methods.
	Guard []guardResult `json:"guard,omitempty"`
	// Repl holds the replication sweep (-repl), absent otherwise: the same
	// closed-loop load against an unreplicated server, an async-replicated
	// pair, and a sync-replicated pair.
	Repl []replResult `json:"repl,omitempty"`
}

type benchConfig struct {
	Workload   string `json:"workload"` // "avl-set"
	KeyRange   uint64 `json:"key_range"`
	InsertPct  int    `json:"insert_pct"`
	RemovePct  int    `json:"remove_pct"`
	DurationMS int64  `json:"duration_ms"`
	Attempts   int    `json:"attempts"`
	Seed       uint64 `json:"seed"`
}

type benchResult struct {
	Method  string `json:"method"`
	Threads int    `json:"threads"`
	// Ops is completed atomic blocks; ElapsedNS the measured wall time.
	Ops       uint64 `json:"ops"`
	ElapsedNS int64  `json:"elapsed_ns"`
	// ThroughputOpsPerMS matches the unit of the paper's figures.
	ThroughputOpsPerMS float64 `json:"throughput_ops_per_ms"`
	// AbortRate is hardware aborts per hardware attempt (0 when the
	// method made no hardware attempts).
	AbortRate float64 `json:"abort_rate"`
	// Path and abort breakdowns for deeper dashboards.
	FastCommits uint64 `json:"fast_commits"`
	SlowCommits uint64 `json:"slow_commits"`
	LockRuns    uint64 `json:"lock_runs"`
	STMCommits  uint64 `json:"stm_commits"`
	Aborts      uint64 `json:"aborts"`
}

// wireResult is one serving-layer sweep cell: a fresh in-process rtled
// server at the given grid point, driven over loopback TCP.
type wireResult struct {
	Workload string `json:"workload"`
	Method   string `json:"method"`
	Shards   int    `json:"shards"`
	Workers  int    `json:"workers"` // per shard
	// Coalesce is the server's adaptive-window cap for the cell (1 pins
	// execution uncoalesced); GOMAXPROCS is the Go scheduler's processor
	// count during the cell (0 = the process default, unchanged).
	Coalesce   int `json:"coalesce"`
	GOMAXPROCS int `json:"gomaxprocs"`
	Conns      int `json:"conns"`
	Pipeline   int `json:"pipeline"`
	ReadPct    int `json:"read_pct"`
	// RatePerSec is the open-loop arrival rate; 0 marks a closed-loop cell.
	RatePerSec int `json:"rate_per_sec"`
	// Ops is completed single operations; ElapsedNS the issuing wall time.
	Ops                 uint64  `json:"ops"`
	ElapsedNS           int64   `json:"elapsed_ns"`
	ThroughputOpsPerSec float64 `json:"throughput_ops_per_sec"`
	// BusyRetryRate is StatusBusy rejections per completed operation.
	BusyRetries   uint64  `json:"busy_retries"`
	BusyRetryRate float64 `json:"busy_retry_rate"`
	// Latency percentiles: send-to-response closed loop, scheduled-arrival-
	// to-response open loop (queueing delay included).
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// Server-side wire counters for the cell: operations delivered through
	// the reader's shard-affinity run path, and the mean number of frames
	// the write loop flushed per writev batch.
	AffineOps           uint64  `json:"affine_ops"`
	AvgWriteBatchFrames float64 `json:"avg_write_batch_frames"`
}

func main() {
	methods := flag.String("methods", "Lock,TLE,RW-TLE,FG-TLE(256),NOrec,RHNOrec",
		"comma-separated method names")
	threadList := flag.String("threads", "1,2,4", "comma-separated thread counts")
	keyRange := flag.Uint64("range", 8192, "key range (set size is ~half)")
	insert := flag.Int("insert", 20, "insert percentage")
	remove := flag.Int("remove", 20, "remove percentage")
	dur := flag.Duration("dur", 500*time.Millisecond, "duration per cell")
	attempts := flag.Int("attempts", core.DefaultAttempts, "HTM attempts before lock fallback")
	seed := flag.Uint64("seed", 1, "workload seed")
	jsonOut := flag.Bool("json", false, "write the grid to BENCH_<n>.json")
	outDir := flag.String("outdir", ".", "directory for BENCH_<n>.json files")
	wire := flag.Bool("wire", false, "also sweep the serving layer over loopback TCP")
	wireShards := flag.String("wire-shards", "1,2,4", "comma-separated shard counts for the wire sweep")
	wireWorkload := flag.String("wire-workload", "map", "wire sweep workload")
	wireMethod := flag.String("wire-method", "FG-TLE(256)", "wire sweep method")
	wireWorkers := flag.String("wire-workers", "2", "comma-separated workers-per-shard counts for the wire sweep")
	wireCoalesce := flag.String("wire-coalesce", "8", "comma-separated coalesce-window caps for the wire sweep (1 = uncoalesced)")
	wireProcs := flag.String("wire-gomaxprocs", "0", "comma-separated GOMAXPROCS values for the wire sweep (0 = process default)")
	wireConns := flag.Int("wire-conns", 8, "load generator connections")
	wirePipeline := flag.Int("wire-pipeline", 4, "pipelined slots per connection")
	wireOps := flag.Int("wire-ops", 30000, "single operations per wire cell")
	wireReadPct := flag.Int("wire-read-pct", 90, "read percentage in the wire sweep")
	wireKeys := flag.Int("wire-keys", 1024, "key space in the wire sweep")
	wireRate := flag.Int("wire-rate", 0, "if >0, add an open-loop cell per shard count at this aggregate ops/sec")
	guardSweep := flag.Bool("guard", false, "also sweep the elision guards against sync locks and raw Methods")
	guardGoroutines := flag.String("guard-goroutines", "1,4,16", "comma-separated goroutine counts for the guard sweep")
	guardReadPcts := flag.String("guard-read-pcts", "90,10", "comma-separated read percentages for the guard sweep")
	guardOps := flag.Int("guard-ops", 20000, "operations per goroutine per guard cell")
	guardFormList := flag.String("guard-forms", strings.Join(guardForms, ","), "comma-separated guard sweep forms")
	replSweep := flag.Bool("repl", false, "also sweep replication ack modes (off, async, sync) over loopback TCP")
	replShards := flag.Int("repl-shards", 2, "shard count for the replication sweep")
	replWorkload := flag.String("repl-workload", "map", "replication sweep workload")
	replMethod := flag.String("repl-method", "FG-TLE(256)", "replication sweep method")
	replWorkers := flag.Int("repl-workers", 2, "workers per shard in the replication sweep")
	replConns := flag.Int("repl-conns", 4, "load generator connections in the replication sweep")
	replPipeline := flag.Int("repl-pipeline", 4, "pipelined slots per connection in the replication sweep")
	replOps := flag.Int("repl-ops", 30000, "single operations per replication cell")
	replReadPct := flag.Int("repl-read-pct", 50, "read percentage in the replication sweep (writes are what replication prices)")
	replKeys := flag.Int("repl-keys", 1024, "key space in the replication sweep")
	flag.Parse()

	if *insert+*remove > 100 {
		fatalf("insert + remove must be at most 100")
	}
	threads, err := parseInts(*threadList)
	if err != nil {
		fatalf("bad -threads: %v", err)
	}

	out := benchFile{
		Schema:    "rtle-bench/v1",
		WrittenAt: time.Now().UTC().Format(time.RFC3339),
		// An empty slice, not nil: a section-only run (-methods '') must
		// serialize "results": [] — consumers index the field unguarded,
		// and null round-trips as a schema violation.
		Results: []benchResult{},
		Config: benchConfig{
			Workload: "avl-set", KeyRange: *keyRange,
			InsertPct: *insert, RemovePct: *remove,
			DurationMS: dur.Milliseconds(), Attempts: *attempts, Seed: *seed,
		},
	}

	fmt.Printf("%-18s %8s %14s %12s\n", "method", "threads", "ops/ms", "abort rate")
	for _, name := range splitList(*methods) {
		for _, n := range threads {
			res := runCell(name, n, *keyRange, *insert, *remove, *dur, *attempts, *seed)
			fmt.Printf("%-18s %8d %14.0f %12.4f\n",
				res.Method, res.Threads, res.ThroughputOpsPerMS, res.AbortRate)
			out.Results = append(out.Results, res)
		}
	}

	if *wire {
		shardCounts, err := parseInts(*wireShards)
		if err != nil {
			fatalf("bad -wire-shards: %v", err)
		}
		workerCounts, err := parseInts(*wireWorkers)
		if err != nil {
			fatalf("bad -wire-workers: %v", err)
		}
		coalesceCaps, err := parseInts(*wireCoalesce)
		if err != nil {
			fatalf("bad -wire-coalesce: %v", err)
		}
		procCounts, err := parseIntsMin(*wireProcs, 0)
		if err != nil {
			fatalf("bad -wire-gomaxprocs: %v", err)
		}
		fmt.Printf("\n%-6s %6s %8s %5s %6s %8s %12s %9s %9s %8s %8s %8s\n",
			"shards", "work", "coalesce", "procs", "rate", "ops",
			"ops/sec", "p50 ms", "p99 ms", "busy/op", "affine", "wr/batch")
		for _, procs := range procCounts {
			for _, coal := range coalesceCaps {
				for _, workers := range workerCounts {
					for _, sc := range shardCounts {
						rates := []int{0}
						if *wireRate > 0 {
							rates = append(rates, *wireRate)
						}
						for _, rate := range rates {
							wr := runWireCell(wireCellConfig{
								workload: *wireWorkload, method: *wireMethod,
								shards: sc, workers: workers,
								coalesce: coal, procs: procs,
								conns: *wireConns, pipeline: *wirePipeline,
								ops: *wireOps, readPct: *wireReadPct,
								keys: *wireKeys, rate: rate, seed: *seed,
							})
							fmt.Printf("%-6d %6d %8d %5d %6d %8d %12.0f %9.3f %9.3f %8.4f %8d %8.1f\n",
								wr.Shards, wr.Workers, wr.Coalesce, wr.GOMAXPROCS,
								wr.RatePerSec, wr.Ops, wr.ThroughputOpsPerSec,
								wr.P50MS, wr.P99MS, wr.BusyRetryRate,
								wr.AffineOps, wr.AvgWriteBatchFrames)
							out.Wire = append(out.Wire, wr)
						}
					}
				}
			}
		}
	}

	if *guardSweep {
		gor, err := parseInts(*guardGoroutines)
		if err != nil {
			fatalf("bad -guard-goroutines: %v", err)
		}
		pcts, err := parseInts(*guardReadPcts)
		if err != nil {
			fatalf("bad -guard-read-pcts: %v", err)
		}
		out.Guard = runGuardSweep(splitList(*guardFormList), gor, pcts, *guardOps, *attempts, *seed)
	}

	if *replSweep {
		out.Repl = runReplSweep(replCellConfig{
			workload: *replWorkload, method: *replMethod,
			shards: *replShards, workers: *replWorkers,
			conns: *replConns, pipeline: *replPipeline,
			ops: *replOps, readPct: *replReadPct,
			keys: *replKeys, seed: *seed,
		})
	}

	if *jsonOut {
		path, err := nextBenchPath(*outDir)
		if err != nil {
			fatalf("%v", err)
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			fatalf("%v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&out); err != nil {
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// runCell measures one (method, threads) grid cell.
func runCell(name string, threads int, keyRange uint64, insert, remove int,
	dur time.Duration, attempts int, seed uint64) benchResult {
	policy := core.Policy{Attempts: attempts}
	m := mem.New(harness.DefaultSetHeapWords(keyRange, threads) + 1<<18)
	set := avl.New(m)
	harness.SeedSet(set, keyRange)
	meth, err := harness.BuildMethod(name, m, policy)
	if err != nil {
		fatalf("%v", err)
	}
	res := harness.Run(meth, harness.Config{
		Threads: threads, Duration: dur, Seed: seed,
	}, harness.SetWorkerFactory(set, harness.SetMix{InsertPct: insert, RemovePct: remove}, keyRange))
	if err := set.CheckInvariants(core.Direct(m)); err != nil {
		fatalf("%s @%d threads: TREE CORRUPTED: %v", name, threads, err)
	}

	st := res.Total
	var aborts uint64
	for i := 0; i < htm.NumReasons; i++ {
		aborts += st.FastAborts[i] + st.SlowAborts[i]
	}
	hwAttempts := st.FastAttempts + st.SlowAttempts
	abortRate := 0.0
	if hwAttempts > 0 {
		abortRate = float64(aborts) / float64(hwAttempts)
	}
	return benchResult{
		Method: res.Method, Threads: res.Threads,
		Ops: st.Ops, ElapsedNS: res.Elapsed.Nanoseconds(),
		ThroughputOpsPerMS: res.Throughput(), AbortRate: abortRate,
		FastCommits: st.FastCommits, SlowCommits: st.SlowCommits,
		LockRuns:   st.LockRuns,
		STMCommits: st.STMCommitsHTM + st.STMCommitsLock + st.STMCommitsRO,
		Aborts:     aborts,
	}
}

// wireCellConfig parameterizes one serving-layer sweep cell.
type wireCellConfig struct {
	workload, method             string
	shards, workers, conns       int
	pipeline, ops, readPct, keys int
	coalesce, procs              int
	rate                         int
	seed                         uint64
}

// runWireCell boots a fresh in-process rtled server, drives it over
// loopback TCP, drains it, and reports the cell. A fresh server per cell
// keeps adaptive state (coalesce windows, EWMAs) and ADT contents from
// bleeding between measurements.
func runWireCell(c wireCellConfig) wireResult {
	procs := c.procs
	if procs > 0 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
	} else {
		procs = runtime.GOMAXPROCS(0)
	}
	srv, err := server.New(server.Config{
		Addr:     "127.0.0.1:0",
		Workload: c.workload,
		Method:   c.method,
		Shards:   c.shards,
		Workers:  c.workers,
		Coalesce: c.coalesce,
		Keys:     c.keys,
	})
	if err != nil {
		fatalf("wire cell: %v", err)
	}
	addr, err := srv.Listen()
	if err != nil {
		fatalf("wire cell: %v", err)
	}
	done := make(chan struct{})
	// Serve returns nil on graceful Shutdown; any accept error after the
	// drain below is benign for a measurement cell.
	go func() { defer close(done); _ = srv.Serve() }()

	res, err := server.RunLoad(server.LoadConfig{
		Addr:       addr.String(),
		Workload:   c.workload,
		Conns:      c.conns,
		Pipeline:   c.pipeline,
		Ops:        c.ops,
		RatePerSec: c.rate,
		ReadPct:    c.readPct,
		Keys:       c.keys,
		Seed:       c.seed,
		Check:      false, // measurement cell; correctness runs live in e2e and tests
	})
	if err != nil {
		fatalf("wire cell load: %v", err)
	}

	// Read the wire counters before the drain: shutdown traffic (drain
	// rejections, closing writes) must not blur the cell's numbers.
	m := srv.Metrics()
	affine := m.AffineOps()
	wb := m.WriteBatches()
	avgBatch := 0.0
	if wb.Count > 0 {
		avgBatch = float64(wb.SumNanos) / float64(wb.Count)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatalf("wire cell drain: %v", err)
	}
	<-done

	busyRate := 0.0
	if res.Ops > 0 {
		busyRate = float64(res.BusyRetries) / float64(res.Ops)
	}
	return wireResult{
		Workload: c.workload, Method: c.method,
		Shards: c.shards, Workers: c.workers,
		Coalesce: c.coalesce, GOMAXPROCS: procs,
		Conns: c.conns, Pipeline: c.pipeline,
		ReadPct: c.readPct, RatePerSec: c.rate,
		Ops: res.Ops, ElapsedNS: res.Elapsed.Nanoseconds(),
		ThroughputOpsPerSec: res.Throughput(),
		BusyRetries:         res.BusyRetries, BusyRetryRate: busyRate,
		P50MS:     res.Percentile(0.50) * 1e3,
		P99MS:     res.Percentile(0.99) * 1e3,
		AffineOps: affine, AvgWriteBatchFrames: avgBatch,
	}
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n not yet used.
func nextBenchPath(dir string) (string, error) {
	// One past the highest existing ordinal, not the first unused one:
	// committed BENCH_<n>.json files may skip ordinals (each tracks the PR
	// that produced it), and refreshing must never slot into a gap below
	// an existing file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	next := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

func parseInts(s string) ([]int, error) { return parseIntsMin(s, 1) }

// parseIntsMin parses a comma-separated integer list with an inclusive
// floor (0 admits sentinel values like "GOMAXPROCS unchanged").
func parseIntsMin(s string, min int) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil || n < min {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rtlebench: "+format+"\n", args...)
	os.Exit(1)
}
