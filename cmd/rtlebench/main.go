// Command rtlebench sweeps a method x thread-count grid over the AVL-set
// micro-benchmark (the paper's §6.2 axes) and reports throughput and abort
// rate per cell. With -json it also writes the grid to BENCH_<n>.json —
// picking the first unused index in the output directory — so successive
// runs accumulate a machine-readable performance trajectory.
//
// The JSON schema is documented in README.md ("Benchmark JSON schema").
//
// Example:
//
//	rtlebench -methods TLE,RW-TLE,FG-TLE(256) -threads 1,2,4,8 -dur 500ms -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/htm"
	"rtle/internal/mem"
)

// benchFile is the top-level structure of a BENCH_<n>.json file.
type benchFile struct {
	Schema    string        `json:"schema"` // "rtle-bench/v1"
	WrittenAt string        `json:"written_at"`
	Config    benchConfig   `json:"config"`
	Results   []benchResult `json:"results"`
}

type benchConfig struct {
	Workload   string `json:"workload"` // "avl-set"
	KeyRange   uint64 `json:"key_range"`
	InsertPct  int    `json:"insert_pct"`
	RemovePct  int    `json:"remove_pct"`
	DurationMS int64  `json:"duration_ms"`
	Attempts   int    `json:"attempts"`
	Seed       uint64 `json:"seed"`
}

type benchResult struct {
	Method  string `json:"method"`
	Threads int    `json:"threads"`
	// Ops is completed atomic blocks; ElapsedNS the measured wall time.
	Ops       uint64 `json:"ops"`
	ElapsedNS int64  `json:"elapsed_ns"`
	// ThroughputOpsPerMS matches the unit of the paper's figures.
	ThroughputOpsPerMS float64 `json:"throughput_ops_per_ms"`
	// AbortRate is hardware aborts per hardware attempt (0 when the
	// method made no hardware attempts).
	AbortRate float64 `json:"abort_rate"`
	// Path and abort breakdowns for deeper dashboards.
	FastCommits uint64 `json:"fast_commits"`
	SlowCommits uint64 `json:"slow_commits"`
	LockRuns    uint64 `json:"lock_runs"`
	STMCommits  uint64 `json:"stm_commits"`
	Aborts      uint64 `json:"aborts"`
}

func main() {
	methods := flag.String("methods", "Lock,TLE,RW-TLE,FG-TLE(256),NOrec,RHNOrec",
		"comma-separated method names")
	threadList := flag.String("threads", "1,2,4", "comma-separated thread counts")
	keyRange := flag.Uint64("range", 8192, "key range (set size is ~half)")
	insert := flag.Int("insert", 20, "insert percentage")
	remove := flag.Int("remove", 20, "remove percentage")
	dur := flag.Duration("dur", 500*time.Millisecond, "duration per cell")
	attempts := flag.Int("attempts", core.DefaultAttempts, "HTM attempts before lock fallback")
	seed := flag.Uint64("seed", 1, "workload seed")
	jsonOut := flag.Bool("json", false, "write the grid to BENCH_<n>.json")
	outDir := flag.String("outdir", ".", "directory for BENCH_<n>.json files")
	flag.Parse()

	if *insert+*remove > 100 {
		fatalf("insert + remove must be at most 100")
	}
	threads, err := parseInts(*threadList)
	if err != nil {
		fatalf("bad -threads: %v", err)
	}

	out := benchFile{
		Schema:    "rtle-bench/v1",
		WrittenAt: time.Now().UTC().Format(time.RFC3339),
		Config: benchConfig{
			Workload: "avl-set", KeyRange: *keyRange,
			InsertPct: *insert, RemovePct: *remove,
			DurationMS: dur.Milliseconds(), Attempts: *attempts, Seed: *seed,
		},
	}

	fmt.Printf("%-18s %8s %14s %12s\n", "method", "threads", "ops/ms", "abort rate")
	for _, name := range splitList(*methods) {
		for _, n := range threads {
			res := runCell(name, n, *keyRange, *insert, *remove, *dur, *attempts, *seed)
			fmt.Printf("%-18s %8d %14.0f %12.4f\n",
				res.Method, res.Threads, res.ThroughputOpsPerMS, res.AbortRate)
			out.Results = append(out.Results, res)
		}
	}

	if *jsonOut {
		path, err := nextBenchPath(*outDir)
		if err != nil {
			fatalf("%v", err)
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			fatalf("%v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&out); err != nil {
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// runCell measures one (method, threads) grid cell.
func runCell(name string, threads int, keyRange uint64, insert, remove int,
	dur time.Duration, attempts int, seed uint64) benchResult {
	policy := core.Policy{Attempts: attempts}
	m := mem.New(harness.DefaultSetHeapWords(keyRange, threads) + 1<<18)
	set := avl.New(m)
	harness.SeedSet(set, keyRange)
	meth, err := harness.BuildMethod(name, m, policy)
	if err != nil {
		fatalf("%v", err)
	}
	res := harness.Run(meth, harness.Config{
		Threads: threads, Duration: dur, Seed: seed,
	}, harness.SetWorkerFactory(set, harness.SetMix{InsertPct: insert, RemovePct: remove}, keyRange))
	if err := set.CheckInvariants(core.Direct(m)); err != nil {
		fatalf("%s @%d threads: TREE CORRUPTED: %v", name, threads, err)
	}

	st := res.Total
	var aborts uint64
	for i := 0; i < htm.NumReasons; i++ {
		aborts += st.FastAborts[i] + st.SlowAborts[i]
	}
	hwAttempts := st.FastAttempts + st.SlowAttempts
	abortRate := 0.0
	if hwAttempts > 0 {
		abortRate = float64(aborts) / float64(hwAttempts)
	}
	return benchResult{
		Method: res.Method, Threads: res.Threads,
		Ops: st.Ops, ElapsedNS: res.Elapsed.Nanoseconds(),
		ThroughputOpsPerMS: res.Throughput(), AbortRate: abortRate,
		FastCommits: st.FastCommits, SlowCommits: st.SlowCommits,
		LockRuns:   st.LockRuns,
		STMCommits: st.STMCommitsHTM + st.STMCommitsLock + st.STMCommitsRO,
		Aborts:     aborts,
	}
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n not yet used.
func nextBenchPath(dir string) (string, error) {
	// One past the highest existing ordinal, not the first unused one:
	// committed BENCH_<n>.json files may skip ordinals (each tracks the PR
	// that produced it), and refreshing must never slot into a gap below
	// an existing file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	next := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rtlebench: "+format+"\n", args...)
	os.Exit(1)
}
