package main

import (
	"context"
	"fmt"
	"time"

	"rtle/internal/server"
)

// replResult is one replication sweep cell: a fresh in-process primary
// (plus a live replica unless the mode is "off") driven closed-loop over
// loopback TCP. Comparing the three modes prices the replication spectrum:
// "off" is the baseline, "async" pays only the log append on the commit
// path, "sync" additionally holds every write until the replica
// acknowledged its entry.
type replResult struct {
	Workload string `json:"workload"`
	Method   string `json:"method"`
	// Mode is "off", "async", or "sync".
	Mode     string `json:"mode"`
	Shards   int    `json:"shards"`
	Conns    int    `json:"conns"`
	Pipeline int    `json:"pipeline"`
	ReadPct  int    `json:"read_pct"`
	// Ops is completed single operations; ElapsedNS the issuing wall time.
	Ops                 uint64  `json:"ops"`
	ElapsedNS           int64   `json:"elapsed_ns"`
	ThroughputOpsPerSec float64 `json:"throughput_ops_per_sec"`
	P50MS               float64 `json:"p50_ms"`
	P99MS               float64 `json:"p99_ms"`
	// LogEntries is the primary's final log high-water mark; FinalLagEntries
	// how many of those the replica had not yet applied when the run ended
	// (0 in sync mode by construction, and always 0 with mode "off").
	LogEntries      uint64 `json:"log_entries"`
	FinalLagEntries uint64 `json:"final_lag_entries"`
	// SyncDegraded counts sync commits released without a live subscriber;
	// nonzero means the cell measured a degraded primary, not sync cost.
	SyncDegraded uint64 `json:"sync_degraded"`
}

// replCellConfig parameterizes one replication sweep cell.
type replCellConfig struct {
	workload, method, mode       string
	shards, workers, conns       int
	pipeline, ops, readPct, keys int
	seed                         uint64
}

// runReplCell boots a fresh primary (and, unless mode is "off", a fresh
// replica subscribed to it), drives the primary closed-loop, drains both,
// and reports the cell.
func runReplCell(c replCellConfig) replResult {
	pcfg := server.Config{
		Addr:     "127.0.0.1:0",
		Workload: c.workload,
		Method:   c.method,
		Shards:   c.shards,
		Workers:  c.workers,
		Keys:     c.keys,
	}
	if c.mode != "off" {
		pcfg.ReplAck = c.mode
	}
	primary, err := server.New(pcfg)
	if err != nil {
		fatalf("repl cell: %v", err)
	}
	pAddr, err := primary.Listen()
	if err != nil {
		fatalf("repl cell: %v", err)
	}
	pDone := make(chan struct{})
	// Serve returns nil on graceful Shutdown; any accept error after the
	// drain below is benign for a measurement cell.
	go func() { defer close(pDone); _ = primary.Serve() }()

	var replica *server.Server
	var rDone chan struct{}
	if c.mode != "off" {
		rcfg := pcfg
		rcfg.ReplAck = ""
		rcfg.ReplicaOf = pAddr.String()
		replica, err = server.New(rcfg)
		if err != nil {
			fatalf("repl cell replica: %v", err)
		}
		if _, err := replica.Listen(); err != nil {
			fatalf("repl cell replica: %v", err)
		}
		rDone = make(chan struct{})
		// Serve returns nil on graceful Shutdown, same as the primary's.
		go func() { defer close(rDone); _ = replica.Serve() }()
		// Measure a subscribed pair, not a connecting one: writes issued
		// before the stream is up would degrade (sync) or go unreplicated.
		deadline := time.Now().Add(10 * time.Second)
		for {
			if st, ok := primary.ReplStats(); ok && st.Subscribers == 1 {
				break
			}
			if time.Now().After(deadline) {
				fatalf("repl cell: replica never subscribed")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	res, err := server.RunLoad(server.LoadConfig{
		Addr:     pAddr.String(),
		Workload: c.workload,
		Conns:    c.conns,
		Pipeline: c.pipeline,
		Ops:      c.ops,
		ReadPct:  c.readPct,
		Keys:     c.keys,
		Seed:     c.seed,
		Check:    false, // measurement cell; correctness runs live in e2e and tests
	})
	if err != nil {
		fatalf("repl cell load: %v", err)
	}

	out := replResult{
		Workload: c.workload, Method: c.method, Mode: c.mode,
		Shards: c.shards, Conns: c.conns, Pipeline: c.pipeline,
		ReadPct: c.readPct,
		Ops:     res.Ops, ElapsedNS: res.Elapsed.Nanoseconds(),
		ThroughputOpsPerSec: res.Throughput(),
		P50MS:               res.Percentile(0.50) * 1e3,
		P99MS:               res.Percentile(0.99) * 1e3,
	}
	if pst, ok := primary.ReplStats(); ok {
		out.LogEntries = pst.LogSeq
		out.SyncDegraded = pst.SyncDegraded
		if replica != nil {
			rst, _ := replica.ReplStats()
			if pst.LogSeq > rst.AppliedSeq {
				out.FinalLagEntries = pst.LogSeq - rst.AppliedSeq
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := primary.Shutdown(ctx); err != nil {
		fatalf("repl cell drain: %v", err)
	}
	<-pDone
	if replica != nil {
		if err := replica.Shutdown(ctx); err != nil {
			fatalf("repl cell replica drain: %v", err)
		}
		<-rDone
	}
	return out
}

// runReplSweep runs one cell per ack mode and prints the comparison.
func runReplSweep(c replCellConfig) []replResult {
	fmt.Printf("\n%-8s %8s %14s %10s %10s %10s %10s\n",
		"mode", "ops", "ops/sec", "p50 ms", "p99 ms", "lag", "degraded")
	var out []replResult
	for _, mode := range []string{"off", "async", "sync"} {
		cell := c
		cell.mode = mode
		rr := runReplCell(cell)
		fmt.Printf("%-8s %8d %14.0f %10.3f %10.3f %10d %10d\n",
			rr.Mode, rr.Ops, rr.ThroughputOpsPerSec, rr.P50MS, rr.P99MS,
			rr.FinalLagEntries, rr.SyncDegraded)
		out = append(out, rr)
	}
	return out
}
