package main

import (
	"fmt"
	"sync"
	"time"

	"rtle"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

// The guard sweep (-guard) compares the elision guards against their two
// natural baselines on one workload: a bank of counters where a read
// operation sums a few random counters and a write operation increments
// one. Forms:
//
//   - Guard(TLE) / Guard(RW-TLE): the public rtle.Mutex / rtle.RWMutex,
//     reads through RDo where the guard distinguishes them;
//   - sync.Mutex / sync.RWMutex: the same access pattern on a plain Go
//     slice under the standard library locks — the "what you'd write
//     without this repository" floor (different substrate: native loads
//     instead of simulated-heap barriers, so compare shapes, not values);
//   - TLE / RW-TLE: the raw Methods over the same simulated heap with one
//     pinned Thread per goroutine — what the guard's convenience costs.
//
// Each cell reports the fast-path commit ratio next to throughput: the
// elision claim is precisely that read-mostly cells commit speculatively
// (ratio > 0.9) at raw-Method-comparable throughput.

// guardResult is one guard sweep cell in BENCH_<n>.json's "guard" section.
type guardResult struct {
	Form       string `json:"form"`
	Goroutines int    `json:"goroutines"`
	ReadPct    int    `json:"read_pct"`
	Ops        uint64 `json:"ops"`
	ElapsedNS  int64  `json:"elapsed_ns"`
	// ThroughputOpsPerMS matches the unit of the main grid.
	ThroughputOpsPerMS float64 `json:"throughput_ops_per_ms"`
	// FastRatio is FastCommits/Ops — the elision acceptance metric.
	// Always 0 for the sync.* forms (they never speculate).
	FastRatio    float64 `json:"fast_ratio"`
	FastCommits  uint64  `json:"fast_commits"`
	SlowCommits  uint64  `json:"slow_commits"`
	LockRuns     uint64  `json:"lock_runs"`
	ModeSwitches uint64  `json:"mode_switches"`
}

// guardForms is the sweep's default form roster.
var guardForms = []string{
	"Guard(TLE)", "Guard(RW-TLE)", "sync.Mutex", "sync.RWMutex", "TLE", "RW-TLE",
}

const (
	guardCounters    = 64 // counters, one cache line each
	guardReadSpan    = 4  // counters summed per read op
	guardSyncPadding = 8  // words per counter in the sync forms (line-ish spacing)
)

type guardCellConfig struct {
	form       string
	goroutines int
	readPct    int
	ops        int // per goroutine
	attempts   int
	seed       uint64
}

// runGuardCell measures one (form, goroutines, readPct) cell.
func runGuardCell(c guardCellConfig) guardResult {
	// ops draw their counter indices before entering the critical
	// section, so speculative re-execution replays the same access set.
	type opFn func(id int, idx [guardReadSpan]uint64)
	var readOp, writeOp opFn
	var stats func() core.Stats

	switch c.form {
	case "Guard(TLE)", "Guard(RW-TLE)":
		heap := rtle.NewMemory(1 << 16)
		addrs := allocGuardCounters(heap)
		if c.form == "Guard(TLE)" {
			g := rtle.MustNewMutex(rtle.WithGuardMemory(heap), rtle.WithGuardAttempts(c.attempts))
			readOp = func(id int, idx [guardReadSpan]uint64) {
				g.Do(func(ctx rtle.Context) { sumCounters(ctx, addrs, idx) })
			}
			writeOp = func(id int, idx [guardReadSpan]uint64) {
				g.Do(func(ctx rtle.Context) { ctx.Write(addrs[idx[0]], ctx.Read(addrs[idx[0]])+1) })
			}
			stats = g.Stats
		} else {
			g := rtle.MustNewRWMutex(rtle.WithGuardMemory(heap), rtle.WithGuardAttempts(c.attempts))
			readOp = func(id int, idx [guardReadSpan]uint64) {
				g.RDo(func(ctx rtle.Context) { sumCounters(ctx, addrs, idx) })
			}
			writeOp = func(id int, idx [guardReadSpan]uint64) {
				g.Do(func(ctx rtle.Context) { ctx.Write(addrs[idx[0]], ctx.Read(addrs[idx[0]])+1) })
			}
			stats = g.Stats
		}
	case "sync.Mutex":
		counters := make([]uint64, guardCounters*guardSyncPadding)
		var mu sync.Mutex
		var sink uint64
		readOp = func(id int, idx [guardReadSpan]uint64) {
			mu.Lock()
			var s uint64
			for _, i := range idx {
				s += counters[i*guardSyncPadding]
			}
			sink += s
			mu.Unlock()
		}
		writeOp = func(id int, idx [guardReadSpan]uint64) {
			mu.Lock()
			counters[idx[0]*guardSyncPadding]++
			mu.Unlock()
		}
	case "sync.RWMutex":
		counters := make([]uint64, guardCounters*guardSyncPadding)
		var mu sync.RWMutex
		sinks := make([]uint64, 64*guardSyncPadding) // per-goroutine, padded
		readOp = func(id int, idx [guardReadSpan]uint64) {
			mu.RLock()
			var s uint64
			for _, i := range idx {
				s += counters[i*guardSyncPadding]
			}
			sinks[id%64*guardSyncPadding] += s
			mu.RUnlock()
		}
		writeOp = func(id int, idx [guardReadSpan]uint64) {
			mu.Lock()
			counters[idx[0]*guardSyncPadding]++
			mu.Unlock()
		}
	default: // a raw Method from the harness roster, one Thread per goroutine
		heap := mem.New(1 << 16)
		addrs := allocGuardCounters(heap)
		meth, err := harness.BuildMethod(c.form, heap, core.Policy{Attempts: c.attempts})
		if err != nil {
			fatalf("guard cell: %v", err)
		}
		threads := make([]core.Thread, c.goroutines)
		for i := range threads {
			threads[i] = meth.NewThread()
		}
		readOp = func(id int, idx [guardReadSpan]uint64) {
			threads[id].Atomic(func(ctx core.Context) { sumCounters(ctx, addrs, idx) })
		}
		writeOp = func(id int, idx [guardReadSpan]uint64) {
			threads[id].Atomic(func(ctx core.Context) { ctx.Write(addrs[idx[0]], ctx.Read(addrs[idx[0]])+1) })
		}
		stats = func() core.Stats {
			var total core.Stats
			for _, th := range threads {
				total.Merge(th.Stats())
			}
			return total
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < c.goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewXoshiro256(c.seed + uint64(id)*0x9e3779b97f4a7c15 + 1)
			for i := 0; i < c.ops; i++ {
				var idx [guardReadSpan]uint64
				for j := range idx {
					idx[j] = r.Uint64n(guardCounters)
				}
				if r.Intn(100) < c.readPct {
					readOp(id, idx)
				} else {
					writeOp(id, idx)
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := guardResult{
		Form: c.form, Goroutines: c.goroutines, ReadPct: c.readPct,
		Ops:       uint64(c.goroutines) * uint64(c.ops),
		ElapsedNS: elapsed.Nanoseconds(),
	}
	res.ThroughputOpsPerMS = float64(res.Ops) / (float64(elapsed.Nanoseconds()) / 1e6)
	if stats != nil {
		s := stats()
		res.FastCommits = s.FastCommits
		res.SlowCommits = s.SlowCommits
		res.LockRuns = s.LockRuns
		res.ModeSwitches = s.ModeSwitches
		if s.Ops > 0 {
			res.FastRatio = float64(s.FastCommits) / float64(s.Ops)
		}
	}
	return res
}

// allocGuardCounters places the counter bank, one line per counter, on any
// heap (rtle.Memory and mem.Memory are the same type at the root).
func allocGuardCounters(m *mem.Memory) []mem.Addr {
	addrs := make([]mem.Addr, guardCounters)
	for i := range addrs {
		addrs[i] = m.AllocLines(1)
	}
	return addrs
}

// sumCounters reads the op's counter set through the section context; the
// sum itself is dead, the barriered reads are the workload.
func sumCounters(ctx core.Context, addrs []mem.Addr, idx [guardReadSpan]uint64) uint64 {
	var s uint64
	for _, i := range idx {
		s += ctx.Read(addrs[i])
	}
	return s
}

// runGuardSweep runs the full guard section and returns its cells.
func runGuardSweep(forms []string, goroutineCounts []int, readPcts []int, ops, attempts int, seed uint64) []guardResult {
	var out []guardResult
	fmt.Printf("\n%-14s %10s %8s %14s %10s %12s\n",
		"form", "goroutines", "readpct", "ops/ms", "fast", "mode switch")
	for _, form := range forms {
		for _, rp := range readPcts {
			for _, n := range goroutineCounts {
				res := runGuardCell(guardCellConfig{
					form: form, goroutines: n, readPct: rp,
					ops: ops, attempts: attempts, seed: seed,
				})
				fmt.Printf("%-14s %10d %8d %14.0f %10.3f %12d\n",
					res.Form, res.Goroutines, res.ReadPct,
					res.ThroughputOpsPerMS, res.FastRatio, res.ModeSwitches)
				out = append(out, res)
			}
		}
	}
	return out
}
