// Command bankbench runs the paper's §6.3 bank-accounts corner case for
// one configuration and verifies conservation of the total balance.
//
// Example:
//
//	bankbench -method "FG-TLE(8192)" -threads 8 -accounts 256 -dur 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtle/internal/bank"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/mem"
)

func main() {
	method := flag.String("method", "TLE", "synchronization method")
	threads := flag.Int("threads", 4, "worker threads")
	accounts := flag.Int("accounts", 256, "number of accounts (each on its own cache line)")
	dur := flag.Duration("dur", time.Second, "run duration")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	const initial = 10000
	m := mem.New(*accounts*mem.WordsPerLine + 1<<18)
	b := bank.New(m, *accounts, initial)
	meth, err := harness.BuildMethod(*method, m, core.Policy{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bankbench:", err)
		os.Exit(2)
	}

	res := harness.Run(meth, harness.Config{
		Threads: *threads, Duration: *dur, Seed: uint64(*seed),
	}, harness.BankFactory(b, 100))

	if err := b.CheckConservation(core.Direct(m), uint64(*accounts)*initial); err != nil {
		fmt.Fprintln(os.Stderr, "bankbench: CONSERVATION VIOLATED:", err)
		os.Exit(1)
	}
	st := res.Total
	fmt.Printf("method      %s, %d threads, %d accounts\n", res.Method, res.Threads, *accounts)
	fmt.Printf("throughput  %.0f transfers/ms\n", res.Throughput())
	fmt.Printf("paths       fast=%d slow=%d lock=%d stm=%d\n",
		st.FastCommits, st.SlowCommits, st.LockRuns,
		st.STMCommitsHTM+st.STMCommitsLock+st.STMCommitsRO)
	fmt.Printf("total balance conserved (%d)\n", uint64(*accounts)*initial)
}
