// Package rtle is a from-scratch Go reproduction of "Refined
// Transactional Lock Elision" (Dice, Kogan, Lev — PPoPP 2016), built on a
// simulated best-effort hardware transactional memory.
//
// The repository implements the paper's two contributions — RW-TLE and
// FG-TLE — together with every substrate and baseline the evaluation
// depends on: a word-addressable simulated shared memory with cache-line
// versioning (internal/mem), a TL2-style best-effort HTM with capacity
// limits and abort codes (internal/htm), a subscribable spin lock
// (internal/spinlock), standard TLE, RW-TLE, FG-TLE and adaptive FG-TLE
// (internal/core), the NOrec STM and RHNOrec hybrid TM baselines
// (internal/norec, internal/rhnorec), the AVL-tree set, bank-accounts and
// transaction-safe hash-map benchmark structures (internal/avl,
// internal/bank, internal/tmap), a synthetic ccTSA sequence assembler
// (internal/cctsa), and a workload harness computing every statistic the
// paper plots (internal/harness).
//
// See README.md for a tour, DESIGN.md for the architecture and the
// hardware-substitution rationale, and EXPERIMENTS.md for the
// paper-versus-measured record of every figure. The benchmarks in
// bench_test.go and the cmd/experiments binary regenerate the paper's
// evaluation; examples/ holds runnable programs against the public API.
package rtle
