// Package rtle is a from-scratch Go reproduction of "Refined
// Transactional Lock Elision" (Dice, Kogan, Lev — PPoPP 2016), built on a
// simulated best-effort hardware transactional memory.
//
// # Public API
//
// The root package is the entry point: rtle.New assembles a simulated
// heap and a synchronization method with functional options,
//
//	reg := rtle.NewRegistry()
//	tm, err := rtle.New(rtle.FGTLE,
//		rtle.WithOrecs(256),
//		rtle.WithAttempts(5),
//		rtle.WithLazySubscription(),
//		rtle.WithObserver(reg))
//	th := tm.NewThread()            // one per goroutine
//	th.Atomic(func(c rtle.Context) { ... })
//
// Every synchronization method of the paper's evaluation is an Algorithm
// value: Lock, TLE, HLE, RWTLE, FGTLE, AdaptiveFGTLE, ALE, NOrec and
// RHNOrec. A critical section is one function of a Context; the same body
// runs uninstrumented on the HTM fast path, barrier-instrumented on the
// slow path, and under the lock — the method supplies the barriers,
// exactly the role the libitm ABI plays in the paper's implementation.
// Bodies must route all shared access through the Context and be
// re-executable (aborted speculative runs have no effect).
//
// # Elision guards
//
// For code structured around sync.Mutex rather than worker threads, the
// guard API offers the same elision as drop-in locks: rtle.Mutex (TLE)
// and rtle.RWMutex (RW-TLE) are callable from any goroutine,
//
//	g := rtle.MustNewRWMutex()
//	counter := g.Memory().AllocLines(1)
//	g.Do(func(c rtle.Context) {  // update section: elides
//		c.Write(counter, c.Read(counter)+1)
//	})
//	g.RDo(func(c rtle.Context) { // read-only section: elides, and can
//		_ = c.Read(counter)  // commit while a writing lock holder runs
//	})
//	g.Lock()                     // bracket form: always pessimistic
//	g.Ctx().Write(counter, 0)
//	g.Unlock()
//
// The closure forms speculate with lock subscription, an abort budget,
// and an abort-rate-aware retreat; the bracket forms always take the real
// lock (Go cannot re-execute the code between two calls after a hardware
// abort) and interoperate with the closure forms through that same
// subscription. Guards are assembled by NewMutex/NewRWMutex with
// WithGuard* options, or derived from a TM (TM.NewMutex, TM.NewRWMutex)
// to share its heap and policy. The guardmisuse pass of cmd/rtlevet
// statically checks guard call sites (unbalanced brackets, nested
// acquisition, HTM-unfriendly operations inside Do bodies).
//
// Statistics come in two forms: quiescent per-thread Stats (read after
// workers stop, merged with Stats.Merge) or per-guard Stats, and — when
// WithObserver attaches a Registry — live coherent snapshots readable at
// any moment during a run, with per-path latency histograms,
// path-transition traces, and Prometheus/JSON export (see internal/obs
// and cmd/rtlemon).
//
// # Repository layout
//
// The repository implements the paper's two contributions — RW-TLE and
// FG-TLE — together with every substrate and baseline the evaluation
// depends on: a word-addressable simulated shared memory with cache-line
// versioning (internal/mem), a TL2-style best-effort HTM with capacity
// limits and abort codes (internal/htm), a subscribable spin lock
// (internal/spinlock), standard TLE, RW-TLE, FG-TLE and adaptive FG-TLE
// (internal/core), the goroutine-callable elision guards behind
// rtle.Mutex and rtle.RWMutex (internal/guard), the NOrec STM and
// RHNOrec hybrid TM baselines
// (internal/norec, internal/rhnorec), the live-observability layer
// (internal/obs), the AVL-tree set, bank-accounts and transaction-safe
// hash-map benchmark structures (internal/avl, internal/bank,
// internal/tmap), a synthetic ccTSA sequence assembler (internal/cctsa),
// and a workload harness computing every statistic the paper plots
// (internal/harness).
//
// See README.md for a tour, DESIGN.md for the architecture and the
// hardware-substitution rationale, and EXPERIMENTS.md for the
// paper-versus-measured record of every figure. The benchmarks in
// bench_test.go and the cmd/experiments binary regenerate the paper's
// evaluation; examples/ holds runnable programs against the public API.
package rtle
