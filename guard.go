package rtle

import (
	"fmt"

	"rtle/internal/guard"
	"rtle/internal/mem"
)

// This file is the guard half of the public API: sync-shaped locks that
// elide. Where New builds a Method + Thread pair (fixed worker identity,
// the paper's experimental harness shape), a guard is callable from any
// goroutine and drops into code already structured around sync.Mutex:
//
//	g := rtle.MustNewMutex()
//	counter := g.Memory().AllocLines(1)
//	g.Do(func(c rtle.Context) {           // elides: speculative, subscribed
//		c.Write(counter, c.Read(counter)+1)
//	})
//	g.Lock()                              // pessimistic bracket form
//	g.Ctx().Write(counter, 0)
//	g.Unlock()
//
// Do/RDo closures speculate (TLE / RW-TLE with abort-budget fallback and
// abort-rate-aware retreat); Lock/Unlock and RLock/RUnlock brackets always
// take the real lock, because Go cannot re-execute the code between two
// calls after a hardware abort — the two forms interoperate through lock
// subscription. See the internal/guard package documentation for the
// execution model and DESIGN.md §8 for the soundness argument.

// Guard types, aliased from internal/guard.
type (
	// Mutex is a sync.Mutex-shaped elision guard backed by TLE.
	Mutex = guard.Mutex
	// RWMutex is a sync.RWMutex-shaped elision guard backed by RW-TLE.
	RWMutex = guard.RWMutex
	// GuardRetreatConfig tunes a guard's abort-rate-aware retreat (see
	// WithGuardRetreat).
	GuardRetreatConfig = guard.RetreatConfig
)

// guardConfig collects what the guard options assemble.
type guardConfig struct {
	memory *Memory
	words  int
	cfg    guard.Config
	set    []string
}

func (c *guardConfig) mark(name string) { c.set = append(c.set, name) }

// GuardOption configures NewMutex and NewRWMutex. The options mirror
// New's: the same Policy fields feed the same speculation machinery.
type GuardOption func(*guardConfig)

// WithGuardMemory puts the guard's lock (and the data it will protect) in
// an existing heap, so guards can share an address space with each other
// and with New-built methods. Default: a fresh heap.
func WithGuardMemory(m *Memory) GuardOption {
	return func(c *guardConfig) { c.memory = m; c.mark("WithGuardMemory") }
}

// WithGuardMemoryWords sizes the heap the constructor allocates when
// WithGuardMemory is not given. Default 1<<20 words.
func WithGuardMemoryWords(words int) GuardOption {
	return func(c *guardConfig) { c.words = words; c.mark("WithGuardMemoryWords") }
}

// WithGuardAttempts sets the per-section HTM retry budget (paper default 5).
func WithGuardAttempts(n int) GuardOption {
	return func(c *guardConfig) { c.cfg.Policy.Attempts = n }
}

// WithGuardAdaptiveAttempts replaces the static retry budget with the
// AIMD policy seeded by the WithGuardAttempts value.
func WithGuardAdaptiveAttempts() GuardOption {
	return func(c *guardConfig) { c.cfg.Policy.AdaptiveAttempts = true }
}

// WithGuardLazySubscription makes RWMutex slow-path read sections
// subscribe to the writer lock just before committing (§5). It applies
// only to RWMutex: plain TLE has no slow path, so NewMutex rejects it.
func WithGuardLazySubscription() GuardOption {
	return func(c *guardConfig) {
		c.cfg.Policy.LazySubscription = true
		c.mark("WithGuardLazySubscription")
	}
}

// WithGuardObserver streams the guard's execution events into obs, same
// contract as WithObserver.
func WithGuardObserver(o Observer) GuardOption {
	return func(c *guardConfig) { c.cfg.Policy.Observer = o }
}

// WithGuardHTM replaces the simulated-HTM configuration wholesale.
func WithGuardHTM(cfg HTMConfig) GuardOption {
	return func(c *guardConfig) { c.cfg.Policy.HTM = cfg }
}

// WithGuardInterleave sets only the concurrency-virtualization knob (see
// WithInterleave).
func WithGuardInterleave(n int) GuardOption {
	return func(c *guardConfig) { c.cfg.Policy.HTM.InterleaveEvery = n }
}

// WithGuardRetreat tunes the abort-rate-aware retreat controller.
func WithGuardRetreat(cfg GuardRetreatConfig) GuardOption {
	return func(c *guardConfig) { c.cfg.Retreat = cfg }
}

// WithGuardPolicy replaces the assembled Policy wholesale. It is the
// escape hatch for wiring that has no dedicated option — most notably a
// fault plan: build a Policy, let a fault Director configure it, then
// hand it to the guard. Later per-field guard options still apply on top.
func WithGuardPolicy(p Policy) GuardOption {
	return func(c *guardConfig) { c.cfg.Policy = p }
}

// newGuardConfig folds the options and resolves the heap.
func newGuardConfig(opts []GuardOption) (*guardConfig, *Memory, error) {
	c := &guardConfig{words: 1 << 20}
	for _, opt := range opts {
		opt(c)
	}
	if c.memory != nil && has(c.set, "WithGuardMemoryWords") {
		return nil, nil, fmt.Errorf("rtle: WithGuardMemoryWords conflicts with WithGuardMemory (the supplied heap fixes the size)")
	}
	m := c.memory
	if m == nil {
		if c.words <= 0 {
			return nil, nil, fmt.Errorf("rtle: guard memory size %d words is not positive", c.words)
		}
		m = mem.New(c.words)
	}
	return c, m, nil
}

func has(set []string, name string) bool {
	for _, s := range set {
		if s == name {
			return true
		}
	}
	return false
}

// NewMutex assembles a TLE-backed elision guard (and a fresh heap, unless
// WithGuardMemory supplies one).
func NewMutex(opts ...GuardOption) (*Mutex, error) {
	c, m, err := newGuardConfig(opts)
	if err != nil {
		return nil, err
	}
	if c.cfg.Policy.LazySubscription {
		return nil, fmt.Errorf("rtle: WithGuardLazySubscription has no effect on Mutex (plain TLE has no slow path); use NewRWMutex")
	}
	return guard.NewMutex(m, c.cfg), nil
}

// NewRWMutex assembles an RW-TLE-backed elision guard.
func NewRWMutex(opts ...GuardOption) (*RWMutex, error) {
	c, m, err := newGuardConfig(opts)
	if err != nil {
		return nil, err
	}
	return guard.NewRWMutex(m, c.cfg), nil
}

// MustNewMutex is NewMutex for statically-known configurations; it panics
// on error.
func MustNewMutex(opts ...GuardOption) *Mutex {
	g, err := NewMutex(opts...)
	if err != nil {
		panic(err)
	}
	return g
}

// MustNewRWMutex is NewRWMutex for statically-known configurations; it
// panics on error.
func MustNewRWMutex(opts ...GuardOption) *RWMutex {
	g, err := NewRWMutex(opts...)
	if err != nil {
		panic(err)
	}
	return g
}

// NewMutex returns a guard sharing the TM's heap and policy (attempt
// budget, observer, HTM configuration, fault hooks), so guard sections
// and Thread sections coexist in one address space under one
// configuration. Guard options apply on top.
func (tm *TM) NewMutex(opts ...GuardOption) (*Mutex, error) {
	return NewMutex(append(tm.guardDefaults(), opts...)...)
}

// NewRWMutex is the RW-TLE analogue of TM.NewMutex.
func (tm *TM) NewRWMutex(opts ...GuardOption) (*RWMutex, error) {
	return NewRWMutex(append(tm.guardDefaults(), opts...)...)
}

func (tm *TM) guardDefaults() []GuardOption {
	return []GuardOption{WithGuardMemory(tm.m), WithGuardPolicy(tm.policy)}
}
