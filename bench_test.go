// Benchmarks regenerating the paper's evaluation (§6), one benchmark
// family per table/figure, plus ablation benches for the design choices
// DESIGN.md calls out. Each bench reports the paper's metric via
// b.ReportMetric (ops/ms, or ms of runtime for ccTSA).
//
// The thread axis here is kept small so `go test -bench=.` terminates
// quickly; cmd/experiments sweeps the full grids with wall-clock-length
// data points.
package rtle_test

import (
	"fmt"
	"testing"

	"rtle/internal/avl"
	"rtle/internal/bank"
	"rtle/internal/cctsa"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/obs"
	"rtle/internal/rng"
)

var benchThreads = []int{1, 2, 4}

// benchSet runs one AVL-set configuration for b.N total operations and
// reports throughput.
func benchSet(b *testing.B, method string, keyRange uint64, mix harness.SetMix, threads int, policy core.Policy) {
	b.Helper()
	m := mem.New(harness.DefaultSetHeapWords(keyRange, threads) + 1<<18)
	set := avl.New(m)
	harness.SeedSet(set, keyRange)
	meth := harness.MustBuildMethod(method, m, policy)
	ops := b.N/threads + 1
	b.ResetTimer()
	res := harness.Run(meth, harness.Config{
		Threads: threads, OpsPerThread: ops, Seed: 1,
	}, harness.SetWorkerFactory(set, mix, keyRange))
	b.StopTimer()
	b.ReportMetric(res.Throughput(), "ops/ms")
	if err := set.CheckInvariants(core.Direct(m)); err != nil {
		b.Fatalf("tree corrupted: %v", err)
	}
}

// BenchmarkFig5 regenerates Figure 5's throughput grid: key range × mix ×
// method × threads, as speedup raw material (normalize to Lock/T=1).
func BenchmarkFig5(b *testing.B) {
	for _, kr := range []uint64{8192, 65536} {
		for _, mix := range []harness.SetMix{
			{InsertPct: 0, RemovePct: 0},
			{InsertPct: 10, RemovePct: 10},
			{InsertPct: 20, RemovePct: 20},
			{InsertPct: 50, RemovePct: 50},
		} {
			for _, meth := range []string{"Lock", "NOrec", "RHNOrec", "TLE", "RW-TLE", "FG-TLE(16)", "FG-TLE(1024)", "FG-TLE(8192)"} {
				for _, n := range benchThreads {
					name := fmt.Sprintf("range=%d/mix=%d:%d:%d/%s/threads=%d",
						kr, mix.InsertPct, mix.RemovePct, 100-mix.InsertPct-mix.RemovePct, meth, n)
					b.Run(name, func(b *testing.B) {
						benchSet(b, meth, kr, mix, n, core.Policy{})
					})
				}
			}
		}
	}
}

// BenchmarkFig6_SlowPath regenerates Figure 6: slow-path throughput of the
// refined variants on the contended workload (8192 keys, 20% updates).
func BenchmarkFig6_SlowPath(b *testing.B) {
	mix := harness.SetMix{InsertPct: 20, RemovePct: 20}
	for _, meth := range harness.RefinedNames {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", meth, n), func(b *testing.B) {
				m := mem.New(harness.DefaultSetHeapWords(8192, n) + 1<<18)
				set := avl.New(m)
				harness.SeedSet(set, 8192)
				method := harness.MustBuildMethod(meth, m, core.Policy{})
				b.ResetTimer()
				res := harness.Run(method, harness.Config{
					Threads: n, OpsPerThread: b.N/n + 1, Seed: 1,
				}, harness.SetWorkerFactory(set, mix, 8192))
				b.StopTimer()
				b.ReportMetric(res.SlowHTMThroughput(), "slowHTM-ops/ms")
				b.ReportMetric(res.LockPathThroughput(), "lock-ops/ms")
			})
		}
	}
}

// BenchmarkFig7_TimeUnderLock regenerates Figure 7: per-execution lock
// hold time (normalize externally to the Lock rows).
func BenchmarkFig7_TimeUnderLock(b *testing.B) {
	mix := harness.SetMix{InsertPct: 20, RemovePct: 20}
	methods := append([]string{"Lock", "TLE"}, harness.RefinedNames...)
	for _, meth := range methods {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", meth, n), func(b *testing.B) {
				m := mem.New(harness.DefaultSetHeapWords(8192, n) + 1<<18)
				set := avl.New(m)
				harness.SeedSet(set, 8192)
				method := harness.MustBuildMethod(meth, m, core.Policy{})
				b.ResetTimer()
				res := harness.Run(method, harness.Config{
					Threads: n, OpsPerThread: b.N/n + 1, Seed: 1,
				}, harness.SetWorkerFactory(set, mix, 8192))
				b.StopTimer()
				if res.Total.LockRuns > 0 {
					b.ReportMetric(float64(res.Total.LockHoldNanos)/float64(res.Total.LockRuns), "ns/lock-run")
				}
			})
		}
	}
}

// BenchmarkFig8to10_NOrecFamily regenerates Figures 8–10: RHNOrec
// slow-path throughput, execution-type distribution, and validation
// frequency (NOrec alongside for Fig. 10).
func BenchmarkFig8to10_NOrecFamily(b *testing.B) {
	mix := harness.SetMix{InsertPct: 20, RemovePct: 20}
	for _, meth := range []string{"NOrec", "RHNOrec"} {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", meth, n), func(b *testing.B) {
				m := mem.New(harness.DefaultSetHeapWords(8192, n) + 1<<18)
				set := avl.New(m)
				harness.SeedSet(set, 8192)
				method := harness.MustBuildMethod(meth, m, core.Policy{})
				b.ResetTimer()
				res := harness.Run(method, harness.Config{
					Threads: n, OpsPerThread: b.N/n + 1, Seed: 1,
				}, harness.SetWorkerFactory(set, mix, 8192))
				b.StopTimer()
				b.ReportMetric(res.ValidationsPerTx(), "validations/tx")
				f := res.ExecTypeDistribution()
				b.ReportMetric(f.HTMFast, "fracHTMfast")
				b.ReportMetric(f.STMFast+f.STMSlow, "fracSTM")
				if meth == "RHNOrec" {
					b.ReportMetric(res.RHNOrecSlowHTMThroughput(), "slowHTM-ops/ms")
					b.ReportMetric(res.STMThroughput(), "swslow-ops/ms")
				}
			})
		}
	}
}

// BenchmarkFig11_Bank regenerates Figure 11: the bank-accounts
// read-modify-write micro-benchmark.
func BenchmarkFig11_Bank(b *testing.B) {
	for _, meth := range []string{"Lock", "TLE", "RW-TLE", "FG-TLE(1)", "FG-TLE(256)", "FG-TLE(8192)", "NOrec", "RHNOrec"} {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", meth, n), func(b *testing.B) {
				m := mem.New(1 << 20)
				bk := bank.New(m, 256, 10000)
				method := harness.MustBuildMethod(meth, m, core.Policy{})
				b.ResetTimer()
				res := harness.Run(method, harness.Config{
					Threads: n, OpsPerThread: b.N/n + 1, Seed: 1,
				}, harness.BankFactory(bk, 100))
				b.StopTimer()
				b.ReportMetric(res.Throughput(), "ops/ms")
				if err := bk.CheckConservation(core.Direct(m), 256*10000); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkFig12_Unfriendly regenerates Figure 12: one HTM-unfriendly
// updater plus Find-only readers.
func BenchmarkFig12_Unfriendly(b *testing.B) {
	const keyRange = 65536
	for _, meth := range []string{"Lock", "TLE", "RW-TLE", "FG-TLE(16)", "FG-TLE(8192)", "NOrec", "RHNOrec"} {
		for _, n := range []int{2, 4} {
			b.Run(fmt.Sprintf("%s/threads=%d", meth, n), func(b *testing.B) {
				m := mem.New(harness.DefaultSetHeapWords(keyRange, n) + 1<<18)
				set := avl.New(m)
				harness.SeedSet(set, keyRange)
				method := harness.MustBuildMethod(meth, m, core.Policy{})
				b.ResetTimer()
				res := harness.Run(method, harness.Config{
					Threads: n, OpsPerThread: b.N/n + 1, Seed: 1,
				}, harness.UnfriendlyFactory(set, keyRange, true))
				b.StopTimer()
				b.ReportMetric(res.Throughput(), "ops/ms")
			})
		}
	}
}

// BenchmarkFig13_CCTSA regenerates Figure 13: total assembler runtime,
// original fine-grained locking versus transactified variants.
func BenchmarkFig13_CCTSA(b *testing.B) {
	cfgFor := func(threads int) cctsa.Config {
		return cctsa.Config{GenomeLen: 20000, Coverage: 6, Threads: threads, Seed: 1}
	}
	for _, n := range benchThreads {
		b.Run(fmt.Sprintf("Lock.orig/threads=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in := cctsa.Prepare(cfgFor(n))
				res := in.RunOriginal()
				b.ReportMetric(float64(res.Total.Microseconds())/1000, "runtime-ms")
			}
		})
	}
	for _, meth := range []string{"Lock", "TLE", "RW-TLE", "FG-TLE(1024)", "FG-TLE(8192)"} {
		for _, n := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", meth, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					in := cctsa.Prepare(cfgFor(n))
					res := in.RunTransactified(func(m *mem.Memory) core.Method {
						return harness.MustBuildMethod(meth, m, core.Policy{})
					})
					b.ReportMetric(float64(res.Total.Microseconds())/1000, "runtime-ms")
					b.ReportMetric(res.Stats.LockFallbackFraction()*100, "lock-fallback-%")
				}
			})
		}
	}
}

// --- Ablations (A1–A3 of DESIGN.md) ----------------------------------------

// BenchmarkAblation_LazySub measures the §5 lazy-subscription option's
// cost on the contended workload: slow-path commits become impossible
// while the lock is held, so refined TLE degrades toward plain TLE.
func BenchmarkAblation_LazySub(b *testing.B) {
	mix := harness.SetMix{InsertPct: 20, RemovePct: 20}
	for _, lazy := range []bool{false, true} {
		b.Run(fmt.Sprintf("FG-TLE(1024)/lazy=%v/threads=4", lazy), func(b *testing.B) {
			benchSet(b, "FG-TLE(1024)", 8192, mix, 4, core.Policy{LazySubscription: lazy})
		})
	}
}

// BenchmarkAblation_Attempts sweeps the fast-path retry budget (the
// paper's footnote 1: libitm default 2 vs the paper's 5).
func BenchmarkAblation_Attempts(b *testing.B) {
	mix := harness.SetMix{InsertPct: 20, RemovePct: 20}
	for _, attempts := range []int{1, 2, 5, 10} {
		b.Run(fmt.Sprintf("TLE/attempts=%d/threads=4", attempts), func(b *testing.B) {
			benchSet(b, "TLE", 8192, mix, 4, core.Policy{Attempts: attempts})
		})
	}
}

// BenchmarkAblation_Adaptive compares adaptive FG-TLE against fixed orec
// counts on a small-footprint workload where shrinking pays.
func BenchmarkAblation_Adaptive(b *testing.B) {
	mix := harness.SetMix{InsertPct: 50, RemovePct: 50}
	for _, meth := range []string{"FG-TLE(1)", "FG-TLE(8192)", "FG-TLE(adaptive)"} {
		b.Run(fmt.Sprintf("%s/threads=4", meth), func(b *testing.B) {
			benchSet(b, meth, 512, mix, 4, core.Policy{})
		})
	}
}

// BenchmarkAblation_OrecCount isolates the orec-count tradeoff of §6.2.1
// at one contended configuration.
func BenchmarkAblation_OrecCount(b *testing.B) {
	mix := harness.SetMix{InsertPct: 20, RemovePct: 20}
	for _, orecs := range []int{1, 4, 16, 256, 1024, 4096, 8192} {
		b.Run(fmt.Sprintf("orecs=%d/threads=4", orecs), func(b *testing.B) {
			benchSet(b, fmt.Sprintf("FG-TLE(%d)", orecs), 8192, mix, 4, core.Policy{})
		})
	}
}

// BenchmarkAblation_ALE contrasts the §2 related-work design point: ALE's
// always-on fast-path write instrumentation versus refined TLE's
// uninstrumented fast path, and HLE's single hardware retry as the floor.
func BenchmarkAblation_ALE(b *testing.B) {
	mix := harness.SetMix{InsertPct: 20, RemovePct: 20}
	for _, meth := range []string{"HLE", "TLE", "FG-TLE(1024)", "ALE(1024)"} {
		b.Run(fmt.Sprintf("%s/threads=4", meth), func(b *testing.B) {
			benchSet(b, meth, 8192, mix, 4, core.Policy{})
		})
	}
}

// BenchmarkAblation_AdaptiveAttempts contrasts the static attempt budget
// with the AIMD policy on an HTM-hostile workload (one in five operations
// cannot speculate).
func BenchmarkAblation_AdaptiveAttempts(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		b.Run(fmt.Sprintf("TLE/adaptive=%v/threads=4", adaptive), func(b *testing.B) {
			m := mem.New(harness.DefaultSetHeapWords(8192, 4) + 1<<18)
			set := avl.New(m)
			harness.SeedSet(set, 8192)
			meth := harness.MustBuildMethod("TLE", m, core.Policy{AdaptiveAttempts: adaptive})
			factory := func(id int, t core.Thread) harness.Worker {
				h := set.NewHandle()
				return func(r *rng.Xoshiro256) {
					key := r.Uint64n(8192)
					if r.Intn(5) == 0 {
						var res bool
						t.Atomic(func(c core.Context) {
							c.Unsupported()
							res = h.InsertCS(c, key)
						})
						h.AfterInsert(res)
					} else {
						h.Contains(t, key)
					}
				}
			}
			b.ResetTimer()
			res := harness.Run(meth, harness.Config{Threads: 4, OpsPerThread: b.N/4 + 1, Seed: 1}, factory)
			b.StopTimer()
			b.ReportMetric(res.Throughput(), "ops/ms")
			b.ReportMetric(float64(res.Total.FastAttempts)/float64(res.Total.Ops), "attempts/op")
		})
	}
}

// BenchmarkScanWorkload is this repository's extension experiment: point
// operations plus wide range scans whose read sets overflow the HTM
// capacity naturally (no fault injection), forcing lock fallbacks under
// which refined TLE keeps committing point reads.
func BenchmarkScanWorkload(b *testing.B) {
	mix := harness.ScanMix{
		SetMix:   harness.SetMix{InsertPct: 20, RemovePct: 20},
		ScanPct:  5,
		ScanSpan: 4096,
	}
	// Interleaving is required here: without it a scan completes within
	// one scheduler slice on a single-core host and no slow-path window
	// ever opens (DESIGN.md §1.5).
	pol := core.Policy{HTM: htm.Config{InterleaveEvery: 4}}
	for _, meth := range []string{"Lock", "TLE", "RW-TLE", "FG-TLE(8192)", "NOrec"} {
		b.Run(fmt.Sprintf("%s/threads=4", meth), func(b *testing.B) {
			m := mem.New(harness.DefaultSetHeapWords(8192, 4) + 1<<18)
			set := avl.New(m)
			harness.SeedSet(set, 8192)
			method := harness.MustBuildMethod(meth, m, pol)
			b.ResetTimer()
			res := harness.Run(method, harness.Config{
				Threads: 4, OpsPerThread: b.N/4 + 1, Seed: 1,
			}, harness.ScanWorkerFactory(set, mix, 8192))
			b.StopTimer()
			b.ReportMetric(res.Throughput(), "ops/ms")
			b.ReportMetric(float64(res.Total.SlowCommits), "slow-commits")
		})
	}
}

// BenchmarkObserverOverhead measures the cost of the live-observability
// layer on the hot path: the same FG-TLE workload with Policy.Observer nil
// (the production default — each event pays one nil check) and with an
// obs.Registry attached (every event lands in atomic shard counters plus a
// latency-histogram update per op). The acceptance bar for the nil case is
// within 2% of the pre-observability baseline; compare the two sub-bench
// throughputs to read the enabled cost.
func BenchmarkObserverOverhead(b *testing.B) {
	mix := harness.SetMix{InsertPct: 20, RemovePct: 20}
	b.Run("observer=off", func(b *testing.B) {
		benchSet(b, "FG-TLE(256)", 8192, mix, 4, core.Policy{})
	})
	b.Run("observer=on", func(b *testing.B) {
		// TraceCapacity -1: isolate the counter/histogram cost from
		// the (mutex-guarded, samplable) trace ring.
		reg := obs.NewRegistry(obs.Config{TraceCapacity: -1})
		benchSet(b, "FG-TLE(256)", 8192, mix, 4, core.Policy{Observer: reg})
	})
	b.Run("observer=on+trace", func(b *testing.B) {
		reg := obs.NewRegistry(obs.Config{})
		benchSet(b, "FG-TLE(256)", 8192, mix, 4, core.Policy{Observer: reg})
	})
}
