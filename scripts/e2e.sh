#!/usr/bin/env bash
# End-to-end serving-layer check: boot rtled on a loopback port, drive it
# with rtleload under the acceptance mixes (pipelined connections, 90/10
# and 50/50 read/write, witness batches), once cleanly and once under a
# fault plan, then drain with SIGTERM. rtleload exits non-zero on any
# linearizability or batch-atomicity violation, which fails this script.
#
# The whole matrix runs once per shard count: -shards 1 covers the
# unsharded fast path, -shards 4 covers consistent-hash routing, the
# cross-shard slow path (two-key witness batches, cross-shard bank
# transfers), and the multi-shard drain.
#
# Usage: scripts/e2e.sh [bindir] [shard counts]
#   bindir: directory holding prebuilt rtled/rtleload (default: build into
#   a temp dir with `go build`).
#   shard counts: space-separated list (default "1 4"); CI passes a single
#   count per matrix job.
set -euo pipefail

cd "$(dirname "$0")/.."

BINDIR="${1:-}"
SHARD_COUNTS="${2:-1 4}"
if [ -z "$BINDIR" ]; then
  BINDIR="$(mktemp -d)"
  echo "e2e: building rtled and rtleload into $BINDIR"
  go build -o "$BINDIR/rtled" ./cmd/rtled
  go build -o "$BINDIR/rtleload" ./cmd/rtleload
fi

LOG="$(mktemp)"
SRV_PID=""

cleanup() {
  if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
    kill -TERM "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
  fi
  rm -f "$LOG"
}
trap cleanup EXIT

# boot <rtled args...>: start rtled, export SRV_PID/ADDR.
boot() {
  : >"$LOG"
  "$BINDIR/rtled" -addr 127.0.0.1:0 "$@" >"$LOG" 2>&1 &
  SRV_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^rtled: listening on \([0-9.:]*\).*/\1/p' "$LOG" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || { echo "e2e: rtled died at boot"; cat "$LOG"; exit 1; }
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "e2e: rtled never announced its port"; cat "$LOG"; exit 1; }
  echo "e2e: rtled up at $ADDR ($*)"
}

drain() {
  kill -TERM "$SRV_PID"
  wait "$SRV_PID" || { echo "e2e: rtled exited non-zero on drain"; exit 1; }
  SRV_PID=""
  echo "e2e: drained cleanly"
}

FAULT_PLAN='{"seed":11,"begin_prob":0.05,"storm_every":500,"storm_len":3}'

for SHARDS in $SHARD_COUNTS; do
  echo "e2e: === shard count $SHARDS ==="

  # --- Clean runs: set workload, both acceptance mixes -----------------------
  # One server boot per checked run: the linearizability models assume the
  # initial state of a fresh server (empty set/map, bank at par), so -check
  # is only sound against a server that has served nothing else.
  boot -workload set -method 'FG-TLE(256)' -shards "$SHARDS" -workers 4 -keys 256
  "$BINDIR/rtleload" -addr "$ADDR" -workload set -keys 256 \
    -conns 4 -pipeline 8 -ops 20000 -read-pct 90 -batch-pct 10
  drain

  boot -workload set -method 'FG-TLE(256)' -shards "$SHARDS" -workers 4 -keys 256
  "$BINDIR/rtleload" -addr "$ADDR" -workload set -keys 256 \
    -conns 4 -pipeline 8 -ops 20000 -read-pct 50 -batch-pct 10 -seed 2
  drain

  # --- Fault-plan run: same mixes with the method under chaos ----------------
  boot -workload set -method 'FG-TLE(256)' -shards "$SHARDS" -workers 4 -keys 256 \
    -fault-plan "$FAULT_PLAN"
  "$BINDIR/rtleload" -addr "$ADDR" -workload set -keys 256 \
    -conns 4 -pipeline 8 -ops 12000 -read-pct 50 -batch-pct 10 -seed 3
  drain
  grep -q 'fault director injected [1-9]' "$LOG" || {
    echo "e2e: fault plan injected nothing; chaos run was vacuous"; cat "$LOG"; exit 1; }

  # --- Map and bank workloads over the wire ----------------------------------
  boot -workload map -method TLE -shards "$SHARDS" -workers 4 -keys 128
  "$BINDIR/rtleload" -addr "$ADDR" -workload map -keys 128 \
    -conns 4 -pipeline 8 -ops 10000 -read-pct 50 -batch-pct 10
  drain

  # Bank with several shards drives the cross-shard transfer slow path; the
  # whole-history check plus the full-coverage conservation witness covers it.
  boot -workload bank -method RHNOrec -shards "$SHARDS" -workers 4 -keys 16
  "$BINDIR/rtleload" -addr "$ADDR" -workload bank -keys 16 \
    -conns 2 -pipeline 4 -ops 1500 -read-pct 60 -batch-pct 20
  drain
done

echo "e2e: all serving-layer checks passed"
