#!/usr/bin/env bash
# End-to-end serving-layer check: boot rtled on a loopback port, drive it
# with rtleload under the acceptance mixes (pipelined connections, 90/10
# and 50/50 read/write, witness batches), once cleanly and once under a
# fault plan, then drain with SIGTERM. rtleload exits non-zero on any
# linearizability or batch-atomicity violation, which fails this script.
#
# The whole matrix runs once per shard count: -shards 1 covers the
# unsharded fast path, -shards 4 covers consistent-hash routing, the
# cross-shard slow path (two-key witness batches, cross-shard bank
# transfers), and the multi-shard drain.
#
# With the "failover" scenario it additionally boots a replicated pair
# (sync ack, file-backed log), SIGKILLs the primary under recorded load,
# promotes the replica with SIGUSR1, and requires rtleload to exit 0 with
# a linearizable merged history — the zero acknowledged-write-loss claim,
# checked at the wire.
#
# The "reshard" scenario boots a single-shard server with the admin
# endpoint, POSTs /reshard?shards=4 while recorded load runs, and requires
# the merged history (spanning both topologies) to check linearizable.
# The "warm" scenario runs two consecutive checked rtleload runs against
# the same server: the second must report its models seeded from a server
# snapshot at a nonzero sequence and still verdict linearizable — the
# warm-checking contract.
#
# Usage: scripts/e2e.sh [bindir] [shard counts] [scenarios]
#   bindir: directory holding prebuilt rtled/rtleload (default: build into
#   a temp dir with `go build`).
#   shard counts: space-separated list (default "1 4"); CI passes a single
#   count per matrix job.
#   scenarios: space-separated subset of "load failover reshard warm"
#   (default "load failover").
set -euo pipefail

cd "$(dirname "$0")/.."

BINDIR="${1:-}"
SHARD_COUNTS="${2:-1 4}"
SCENARIOS="${3:-load failover}"
if [ -z "$BINDIR" ]; then
  BINDIR="$(mktemp -d)"
  echo "e2e: building rtled and rtleload into $BINDIR"
  go build -o "$BINDIR/rtled" ./cmd/rtled
  go build -o "$BINDIR/rtleload" ./cmd/rtleload
fi

LOG="$(mktemp)"
LOG2="$(mktemp)"
SRV_PID=""
SRV2_PID=""

cleanup() {
  for PID in "$SRV_PID" "$SRV2_PID"; do
    if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
      kill -TERM "$PID" 2>/dev/null || true
      wait "$PID" 2>/dev/null || true
    fi
  done
  rm -f "$LOG" "$LOG2"
}
trap cleanup EXIT

# boot <rtled args...>: start rtled, export SRV_PID/ADDR.
boot() {
  : >"$LOG"
  "$BINDIR/rtled" -addr 127.0.0.1:0 "$@" >"$LOG" 2>&1 &
  SRV_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^rtled: listening on \([0-9.:]*\).*/\1/p' "$LOG" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || { echo "e2e: rtled died at boot"; cat "$LOG"; exit 1; }
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "e2e: rtled never announced its port"; cat "$LOG"; exit 1; }
  echo "e2e: rtled up at $ADDR ($*)"
}

drain() {
  kill -TERM "$SRV_PID"
  wait "$SRV_PID" || { echo "e2e: rtled exited non-zero on drain"; exit 1; }
  SRV_PID=""
  echo "e2e: drained cleanly"
}

# boot2 <rtled args...>: start a second rtled (the replica), export
# SRV2_PID/ADDR2.
boot2() {
  : >"$LOG2"
  "$BINDIR/rtled" -addr 127.0.0.1:0 "$@" >"$LOG2" 2>&1 &
  SRV2_PID=$!
  ADDR2=""
  for _ in $(seq 1 100); do
    ADDR2="$(sed -n 's/^rtled: listening on \([0-9.:]*\).*/\1/p' "$LOG2" | head -1)"
    [ -n "$ADDR2" ] && break
    kill -0 "$SRV2_PID" 2>/dev/null || { echo "e2e: second rtled died at boot"; cat "$LOG2"; exit 1; }
    sleep 0.1
  done
  [ -n "$ADDR2" ] || { echo "e2e: second rtled never announced its port"; cat "$LOG2"; exit 1; }
  echo "e2e: rtled up at $ADDR2 ($*)"
}

drain2() {
  kill -TERM "$SRV2_PID"
  wait "$SRV2_PID" || { echo "e2e: second rtled exited non-zero on drain"; cat "$LOG2"; exit 1; }
  SRV2_PID=""
  echo "e2e: replica drained cleanly"
}

# http_post <host:port> <path>: minimal HTTP/1.0 POST over bash's
# /dev/tcp, so the admin endpoints need no curl on the runner. Prints the
# full response (headers and body).
http_post() {
  local hp="$1" path="$2"
  exec 3<>"/dev/tcp/${hp%:*}/${hp##*:}"
  printf 'POST %s HTTP/1.0\r\nHost: %s\r\nContent-Length: 0\r\n\r\n' "$path" "$hp" >&3
  cat <&3
  exec 3>&-
}

FAULT_PLAN='{"seed":11,"begin_prob":0.05,"storm_every":500,"storm_len":3}'

# run_load: the original serving-layer matrix for one shard count.
run_load() {
  echo "e2e: === load scenario, shard count $SHARDS ==="

  # --- Clean runs: set workload, both acceptance mixes -----------------------
  # One server boot per checked run: the linearizability models assume the
  # initial state of a fresh server (empty set/map, bank at par), so -check
  # is only sound against a server that has served nothing else.
  boot -workload set -method 'FG-TLE(256)' -shards "$SHARDS" -workers 4 -keys 256
  "$BINDIR/rtleload" -addr "$ADDR" -workload set -keys 256 \
    -conns 4 -pipeline 8 -ops 20000 -read-pct 90 -batch-pct 10
  drain

  boot -workload set -method 'FG-TLE(256)' -shards "$SHARDS" -workers 4 -keys 256
  "$BINDIR/rtleload" -addr "$ADDR" -workload set -keys 256 \
    -conns 4 -pipeline 8 -ops 20000 -read-pct 50 -batch-pct 10 -seed 2
  drain

  # --- Fault-plan run: same mixes with the method under chaos ----------------
  boot -workload set -method 'FG-TLE(256)' -shards "$SHARDS" -workers 4 -keys 256 \
    -fault-plan "$FAULT_PLAN"
  "$BINDIR/rtleload" -addr "$ADDR" -workload set -keys 256 \
    -conns 4 -pipeline 8 -ops 12000 -read-pct 50 -batch-pct 10 -seed 3
  drain
  grep -q 'fault director injected [1-9]' "$LOG" || {
    echo "e2e: fault plan injected nothing; chaos run was vacuous"; cat "$LOG"; exit 1; }

  # --- Map and bank workloads over the wire ----------------------------------
  boot -workload map -method TLE -shards "$SHARDS" -workers 4 -keys 128
  "$BINDIR/rtleload" -addr "$ADDR" -workload map -keys 128 \
    -conns 4 -pipeline 8 -ops 10000 -read-pct 50 -batch-pct 10
  drain

  # Bank with several shards drives the cross-shard transfer slow path; the
  # whole-history check plus the full-coverage conservation witness covers it.
  boot -workload bank -method RHNOrec -shards "$SHARDS" -workers 4 -keys 16
  "$BINDIR/rtleload" -addr "$ADDR" -workload bank -keys 16 \
    -conns 2 -pipeline 4 -ops 1500 -read-pct 60 -batch-pct 20
  drain

  # Skewed keys exercise the hot-shard path and the abort-aware coalescer.
  boot -workload set -method 'FG-TLE(256)' -shards "$SHARDS" -workers 4 -keys 256
  "$BINDIR/rtleload" -addr "$ADDR" -workload set -keys 256 \
    -conns 4 -pipeline 8 -ops 10000 -read-pct 50 -batch-pct 10 \
    -key-dist zipf -zipf-s 1.2 -seed 4
  drain
}

# run_failover: kill the primary of a replicated pair under recorded load,
# promote the replica, and require the merged history to stay linearizable.
run_failover() {
  echo "e2e: === failover scenario, shard count $SHARDS ==="
  RLOG="$(mktemp -u)"
  LOAD_OUT="$(mktemp)"

  boot -workload map -method TLE -shards "$SHARDS" -workers 4 -keys 256 \
    -repl-ack sync -repl-log "$RLOG"
  PRIMARY="$ADDR"
  PRIMARY_PID="$SRV_PID"
  boot2 -workload map -method TLE -shards "$SHARDS" -workers 4 -keys 256 \
    -replica-of "$PRIMARY"
  REPLICA="$ADDR2"

  "$BINDIR/rtleload" -addr "$PRIMARY,$REPLICA" -workload map -keys 256 \
    -conns 4 -pipeline 8 -ops 2000000 -duration 4s -read-pct 60 -batch-pct 5 \
    >"$LOAD_OUT" 2>&1 &
  LOAD_PID=$!

  sleep 1
  echo "e2e: SIGKILL primary (pid $PRIMARY_PID) mid-run"
  kill -KILL "$PRIMARY_PID"
  wait "$PRIMARY_PID" 2>/dev/null || true
  SRV_PID=""
  sleep 0.3
  echo "e2e: promoting replica (SIGUSR1)"
  kill -USR1 "$SRV2_PID"

  wait "$LOAD_PID" || {
    echo "e2e: rtleload failed across the failover"; cat "$LOAD_OUT"; cat "$LOG2"; exit 1; }
  grep -q 'history is linearizable' "$LOAD_OUT" || {
    echo "e2e: failover history was not checked linearizable"; cat "$LOAD_OUT"; exit 1; }
  grep -q 'promoted to primary' "$LOG2" || {
    echo "e2e: replica never announced its promotion"; cat "$LOG2"; exit 1; }
  grep 'rtleload: failover:' "$LOAD_OUT" || true
  grep 'rtleload:.*ops/sec' "$LOAD_OUT" || true

  drain2
  rm -f "$RLOG" "$LOAD_OUT"
  echo "e2e: failover survived with a linearizable history"
}

# run_reshard: rebuild the serving plane mid-run. Boot at one shard with
# the admin endpoint, start recorded load, POST /reshard?shards=4 while it
# runs, and require the merged history — spanning both topologies — to
# check linearizable. The shard-count matrix dimension does not apply: the
# scenario fixes its own before/after counts.
run_reshard() {
  echo "e2e: === reshard scenario (1 -> 4 shards mid-run) ==="
  LOAD_OUT="$(mktemp)"

  boot -workload map -method TLE -shards 1 -workers 4 -keys 256 \
    -http 127.0.0.1:0
  ADMIN=""
  for _ in $(seq 1 100); do
    ADMIN="$(sed -n 's|^rtled: serving /metrics and /snapshot on \(.*\)$|\1|p' "$LOG" | head -1)"
    [ -n "$ADMIN" ] && break
    sleep 0.1
  done
  [ -n "$ADMIN" ] || { echo "e2e: rtled never announced its admin port"; cat "$LOG"; exit 1; }
  echo "e2e: admin endpoint at $ADMIN"

  "$BINDIR/rtleload" -addr "$ADDR" -workload map -keys 256 \
    -conns 4 -pipeline 8 -ops 2000000 -duration 4s -read-pct 60 -batch-pct 5 \
    >"$LOAD_OUT" 2>&1 &
  LOAD_PID=$!

  sleep 1
  echo "e2e: POST /reshard?shards=4 mid-run"
  http_post "$ADMIN" "/reshard?shards=4" | grep -q 'resharded to 4 shards' || {
    echo "e2e: reshard request failed"; cat "$LOG"; kill "$LOAD_PID" 2>/dev/null || true; exit 1; }

  wait "$LOAD_PID" || {
    echo "e2e: rtleload failed across the reshard"; cat "$LOAD_OUT"; cat "$LOG"; exit 1; }
  grep -q 'history is linearizable' "$LOAD_OUT" || {
    echo "e2e: reshard history was not checked linearizable"; cat "$LOAD_OUT"; exit 1; }
  grep -q 'rtled: resharded to 4 shards' "$LOG" || {
    echo "e2e: server never logged the reshard"; cat "$LOG"; exit 1; }
  grep 'rtleload:.*ops/sec' "$LOAD_OUT" || true

  drain
  rm -f "$LOAD_OUT"
  echo "e2e: reshard survived with a linearizable history"
}

# run_warm: the warm-checking contract. Two consecutive checked runs
# against the same server: the second must seed its models from a server
# snapshot at a nonzero sequence (the first run's writes) and still check
# linearizable. An unseeded second run would report false violations.
run_warm() {
  echo "e2e: === warm-check scenario, shard count $SHARDS ==="
  LOAD_OUT="$(mktemp)"

  # Replication (async ack, in-memory log) gives the snapshot a real log
  # sequence, so the second run's "seeded at seq N" proves the cut
  # captured the first run's writes rather than an empty server.
  boot -workload map -method TLE -shards "$SHARDS" -workers 4 -keys 128 \
    -repl-ack async

  "$BINDIR/rtleload" -addr "$ADDR" -workload map -keys 128 \
    -conns 4 -pipeline 8 -ops 8000 -read-pct 50 -batch-pct 10
  echo "e2e: first checked run passed; server is now warm"

  "$BINDIR/rtleload" -addr "$ADDR" -workload map -keys 128 \
    -conns 4 -pipeline 8 -ops 8000 -read-pct 50 -batch-pct 10 -seed 2 \
    >"$LOAD_OUT" 2>&1 || {
    echo "e2e: second (warm) checked run failed"; cat "$LOAD_OUT"; exit 1; }
  grep -qE 'check seeded from server snapshot at seq [1-9]' "$LOAD_OUT" || {
    echo "e2e: warm run was not seeded from a snapshot"; cat "$LOAD_OUT"; exit 1; }
  grep -q 'history is linearizable' "$LOAD_OUT" || {
    echo "e2e: warm history was not checked linearizable"; cat "$LOAD_OUT"; exit 1; }

  drain
  rm -f "$LOAD_OUT"
  echo "e2e: warm run seeded from snapshot and stayed linearizable"
}

for SHARDS in $SHARD_COUNTS; do
  for SCENARIO in $SCENARIOS; do
    case "$SCENARIO" in
      load) run_load ;;
      failover) run_failover ;;
      reshard) run_reshard ;;
      warm) run_warm ;;
      *) echo "e2e: unknown scenario $SCENARIO"; exit 1 ;;
    esac
  done
done

echo "e2e: all serving-layer checks passed"
