// Command benchdiff compares the wire sections of two BENCH_<n>.json files
// and fails on throughput regressions.
//
//	go run ./scripts/benchdiff.go [-tolerance 0.20] baseline.json candidate.json
//
// Cells are matched on their full configuration (workload, method, shards,
// workers, coalesce, gomaxprocs, conns, pipeline, read mix, arrival rate) —
// ops-per-cell is deliberately not part of the key, so a short CI smoke run
// is comparable against the committed full sweep. A matched closed-loop
// cell whose candidate throughput falls more than the tolerance below the
// baseline fails the diff; open-loop cells (rate > 0) are checked for
// delivering the offered rate rather than compared, since their throughput
// is pinned by the arrival schedule. Zero matched cells is itself a failure:
// it means the sweep's grid or schema drifted and the gate is comparing
// nothing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchFile struct {
	Schema  string     `json:"schema"`
	Results []any      `json:"results"`
	Wire    []wireCell `json:"wire"`
}

type wireCell struct {
	Workload   string  `json:"workload"`
	Method     string  `json:"method"`
	Shards     int     `json:"shards"`
	Workers    int     `json:"workers"`
	Coalesce   int     `json:"coalesce"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Conns      int     `json:"conns"`
	Pipeline   int     `json:"pipeline"`
	ReadPct    int     `json:"read_pct"`
	RatePerSec int     `json:"rate_per_sec"`
	Ops        uint64  `json:"ops"`
	Throughput float64 `json:"throughput_ops_per_sec"`
}

func (c *wireCell) key() string {
	return fmt.Sprintf("%s/%s s%d w%d c%d p%d conns%d pipe%d r%d rate%d",
		c.Workload, c.Method, c.Shards, c.Workers, c.Coalesce,
		c.GOMAXPROCS, c.Conns, c.Pipeline, c.ReadPct, c.RatePerSec)
}

func load(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if f.Schema != "rtle-bench/v1" {
		return nil, fmt.Errorf("%s: schema %q, want rtle-bench/v1", path, f.Schema)
	}
	if f.Results == nil {
		return nil, fmt.Errorf(`%s: "results" is null; a section-only file must carry []`, path)
	}
	for i := range f.Wire {
		c := &f.Wire[i]
		if c.Ops == 0 || (c.RatePerSec == 0 && c.Throughput <= 0) {
			return nil, fmt.Errorf("%s: wire cell %d (%s) carries no measurement", path, i, c.key())
		}
	}
	return &f, nil
}

func main() {
	tolerance := flag.Float64("tolerance", 0.20,
		"maximum allowed fractional throughput drop vs the baseline")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance 0.20] baseline.json candidate.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cand, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	baseline := make(map[string]*wireCell, len(base.Wire))
	for i := range base.Wire {
		baseline[base.Wire[i].key()] = &base.Wire[i]
	}

	matched, failed := 0, 0
	for i := range cand.Wire {
		c := &cand.Wire[i]
		b, ok := baseline[c.key()]
		if !ok {
			continue
		}
		matched++
		if c.RatePerSec > 0 {
			// Open loop: the schedule pins throughput; the gate is only
			// that the offered rate was actually delivered.
			floor := float64(c.RatePerSec) * (1 - *tolerance)
			if c.Throughput < floor {
				failed++
				fmt.Printf("FAIL %s: delivered %.0f ops/sec of an offered %d\n",
					c.key(), c.Throughput, c.RatePerSec)
			}
			continue
		}
		floor := b.Throughput * (1 - *tolerance)
		if c.Throughput < floor {
			failed++
			fmt.Printf("FAIL %s: %.0f ops/sec vs baseline %.0f (floor %.0f)\n",
				c.key(), c.Throughput, b.Throughput, floor)
		} else {
			fmt.Printf("ok   %s: %.0f ops/sec vs baseline %.0f (%+.1f%%)\n",
				c.key(), c.Throughput, b.Throughput,
				100*(c.Throughput-b.Throughput)/b.Throughput)
		}
	}
	if matched == 0 {
		fatal(fmt.Errorf("no candidate wire cell matched the baseline: grid or schema drift"))
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d matched cells regressed beyond %.0f%%",
			failed, matched, *tolerance*100))
	}
	fmt.Printf("benchdiff: %d matched cells within tolerance\n", matched)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
