#!/usr/bin/env bash
# benchsweep.sh — the multi-core wire sweep driver.
#
# Runs rtlebench's serving-layer grid (coalesce x workers x shards x
# GOMAXPROCS) over loopback TCP and writes the result as the next
# BENCH_<n>.json. The default grid is the one the committed BENCH_8.json
# was produced with: a single deeply pipelined connection (so every cell
# exercises the vectored write coalescer and the reader's affinity runs at
# full depth) swept across shard counts, coalesce caps, and scheduler
# widths. On a single-core container the GOMAXPROCS axis is what makes
# shard scaling visible: at 1 proc the unsharded server wins on batching;
# at 4 procs lock-holder preemption bites the single coarse gate and the
# sharded cells pull ahead.
#
# Environment overrides (defaults in parentheses):
#   SWEEP_SHARDS     shard counts                 (1,2,4)
#   SWEEP_WORKERS    workers per shard            (2)
#   SWEEP_COALESCE   coalesce-window caps         (1,8)
#   SWEEP_PROCS      GOMAXPROCS values            (1,2,4)
#   SWEEP_CONNS      load connections             (1)
#   SWEEP_PIPELINE   pipelined slots/conn         (128)
#   SWEEP_OPS        single ops per cell          (60000)
#   SWEEP_RATE       open-loop ops/sec, 0 = none  (40000)
#   SWEEP_OUTDIR     BENCH_<n>.json directory     (.)
set -euo pipefail
cd "$(dirname "$0")/.."

go build -o /tmp/rtlebench ./cmd/rtlebench

exec /tmp/rtlebench -methods '' -json -outdir "${SWEEP_OUTDIR:-.}" \
  -wire \
  -wire-shards "${SWEEP_SHARDS:-1,2,4}" \
  -wire-workers "${SWEEP_WORKERS:-2}" \
  -wire-coalesce "${SWEEP_COALESCE:-1,8}" \
  -wire-gomaxprocs "${SWEEP_PROCS:-1,2,4}" \
  -wire-conns "${SWEEP_CONNS:-1}" \
  -wire-pipeline "${SWEEP_PIPELINE:-128}" \
  -wire-ops "${SWEEP_OPS:-60000}" \
  -wire-rate "${SWEEP_RATE:-40000}"
