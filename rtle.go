package rtle

import (
	"fmt"
	"strings"

	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/norec"
	"rtle/internal/obs"
	"rtle/internal/rhnorec"
)

// This file is the public face of the library: aliases for the execution
// types the internal packages define, an Algorithm enum covering every
// synchronization method in the paper's evaluation, and a functional-options
// constructor that assembles heap + policy + method in one call:
//
//	tm, err := rtle.New(rtle.FGTLE,
//		rtle.WithOrecs(256),
//		rtle.WithAttempts(5),
//		rtle.WithObserver(rtle.NewRegistry()))
//
// The internal packages stay importable for code that needs the full
// surface (custom adaptive configs, the harness, the benchmarks); the root
// package is the stable entry point examples and downstream code build on.

// Aliases for the core execution types, so user code can stay entirely
// within the rtle package.
type (
	// Context is the access interface critical-section bodies run against.
	Context = core.Context
	// Method is a synchronization algorithm bound to a heap and a lock.
	Method = core.Method
	// Thread executes atomic blocks on behalf of one goroutine.
	Thread = core.Thread
	// Stats holds one thread's quiescent counters (Merge aggregates).
	Stats = core.Stats
	// Policy holds the speculation knobs (assembled by New's options).
	Policy = core.Policy
	// Observer receives live execution events (see WithObserver).
	Observer = core.Observer
	// ThreadObserver is the per-thread half of Observer.
	ThreadObserver = core.ThreadObserver
	// Path identifies an execution path (fast, slow, lock, stm).
	Path = core.Path
	// CommitKind identifies the commit bucket of a completed block.
	CommitKind = core.CommitKind
	// Memory is the simulated word-addressable shared heap.
	Memory = mem.Memory
	// Addr addresses a word of simulated memory.
	Addr = mem.Addr
	// HTMConfig configures the simulated hardware (see WithHTM).
	HTMConfig = htm.Config
	// AdaptiveConfig tunes the adaptive FG-TLE variant (see WithAdaptive).
	AdaptiveConfig = core.AdaptiveConfig
	// AdaptiveMethod is the concrete adaptive FG-TLE method; obtain it by
	// type-asserting TM.Method after New(AdaptiveFGTLE, ...) to reach
	// CurrentOrecs and InTLEMode.
	AdaptiveMethod = core.AdaptiveFGTLE
	// Registry is the live-metrics registry (see WithObserver and
	// NewRegistry).
	Registry = obs.Registry
	// RegistryConfig tunes a Registry's trace ring.
	RegistryConfig = obs.Config
	// Snapshot is a coherent point-in-time aggregate of a Registry.
	Snapshot = obs.Snapshot
)

// Execution-path values (Path axis of latency histograms and traces).
const (
	PathFast = core.PathFast
	PathSlow = core.PathSlow
	PathLock = core.PathLock
	PathSTM  = core.PathSTM
)

// WordsPerLine is the simulated cache-line size in words; Memory's
// AllocLines hands out line-aligned blocks in these units.
const WordsPerLine = mem.WordsPerLine

// NewMemory allocates a simulated heap of the given word count.
func NewMemory(words int) *Memory { return mem.New(words) }

// NewRegistry returns a live-metrics Registry with default configuration;
// use NewRegistryWith for custom trace sizing.
func NewRegistry() *Registry { return obs.NewRegistry(obs.Config{}) }

// NewRegistryWith returns a Registry with the given trace configuration.
func NewRegistryWith(cfg RegistryConfig) *Registry { return obs.NewRegistry(cfg) }

// Direct returns a Context that accesses m without synchronization, for
// setup and verification code running while no threads are active.
func Direct(m *Memory) Context { return core.Direct(m) }

// Algorithm selects a synchronization method.
type Algorithm int

const (
	// Lock runs every critical section under the spin lock.
	Lock Algorithm = iota
	// TLE is standard transactional lock elision (§2).
	TLE
	// HLE models hardware lock elision: transactional lock acquisition
	// with the lock word inside the read set.
	HLE
	// RWTLE is the read-write refinement (§3): lock holders announce a
	// writing phase, slow-path transactions run read-only sections.
	RWTLE
	// FGTLE is the fine-grained refinement (§4): lock holders acquire
	// ownership records, slow-path transactions subscribe to them.
	FGTLE
	// AdaptiveFGTLE is FG-TLE with a self-tuning orec array (§4.2.1).
	AdaptiveFGTLE
	// ALE is all-levels elision: FG-TLE whose lock path is replaced by
	// buffered software sections.
	ALE
	// NOrec is the software-only NOrec STM baseline (§6.2.2).
	NOrec
	// RHNOrec is the reduced-hardware NOrec hybrid TM baseline.
	RHNOrec
)

// String returns the algorithm's evaluation-legend name.
func (a Algorithm) String() string {
	switch a {
	case Lock:
		return "Lock"
	case TLE:
		return "TLE"
	case HLE:
		return "HLE"
	case RWTLE:
		return "RW-TLE"
	case FGTLE:
		return "FG-TLE"
	case AdaptiveFGTLE:
		return "FG-TLE(adaptive)"
	case ALE:
		return "ALE"
	case NOrec:
		return "NOrec"
	case RHNOrec:
		return "RHNOrec"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// config collects what the options assemble. applied records each
// algorithm-scoped option by name so New can reject combinations the
// chosen algorithm ignores.
type config struct {
	memory   *Memory
	words    int
	policy   Policy
	orecs    int
	adaptive AdaptiveConfig
	applied  []string
}

func (c *config) mark(name string) { c.applied = append(c.applied, name) }

// Option configures New.
type Option func(*config)

// WithMemory runs the method over an existing heap (so several methods or
// data structures can share one address space). Default: a fresh heap.
func WithMemory(m *Memory) Option { return func(c *config) { c.memory = m } }

// WithMemoryWords sizes the heap New allocates when WithMemory is not
// given. Default 1<<20 words (8 MB).
func WithMemoryWords(words int) Option { return func(c *config) { c.words = words } }

// WithAttempts sets the fast-path HTM retry budget (paper default 5).
// Applies to the algorithms with an attempt loop: TLE, RWTLE, FGTLE,
// AdaptiveFGTLE, ALE, and RHNOrec.
func WithAttempts(n int) Option {
	return func(c *config) { c.policy.Attempts = n; c.mark("WithAttempts") }
}

// WithLazySubscription makes slow-path transactions subscribe to the lock
// just before committing (§5). Applies to the algorithms with an
// instrumented slow path: RWTLE, FGTLE, and AdaptiveFGTLE.
func WithLazySubscription() Option {
	return func(c *config) { c.policy.LazySubscription = true; c.mark("WithLazySubscription") }
}

// WithAdaptiveAttempts replaces the static retry budget with a per-thread
// AIMD policy seeded by the WithAttempts value. Applies to TLE, RWTLE,
// FGTLE, AdaptiveFGTLE, and ALE.
func WithAdaptiveAttempts() Option {
	return func(c *config) { c.policy.AdaptiveAttempts = true; c.mark("WithAdaptiveAttempts") }
}

// WithObserver streams every thread's execution events into obs (commits
// per path, aborts per reason, latencies, lock-hold time), readable while
// the workload runs. Pass a *Registry from NewRegistry, then call its
// Snapshot or DeltaSince at any time.
func WithObserver(o Observer) Option { return func(c *config) { c.policy.Observer = o } }

// WithHTM replaces the simulated-HTM configuration wholesale.
func WithHTM(cfg HTMConfig) Option { return func(c *config) { c.policy.HTM = cfg } }

// WithInterleave sets only the concurrency-virtualization knob: yield every
// n transactional accesses so speculation windows open on hosts with fewer
// cores than threads (see HTMConfig.InterleaveEvery).
func WithInterleave(n int) Option {
	return func(c *config) { c.policy.HTM.InterleaveEvery = n }
}

// WithOrecs sets the ownership-record count for FGTLE and ALE (a power of
// two in [1, 1<<20]; default 256).
func WithOrecs(n int) Option {
	return func(c *config) { c.orecs = n; c.mark("WithOrecs") }
}

// WithAdaptive tunes the AdaptiveFGTLE variant (only).
func WithAdaptive(cfg AdaptiveConfig) Option {
	return func(c *config) { c.adaptive = cfg; c.mark("WithAdaptive") }
}

// optionScope lists, for every option whose effect is algorithm-specific,
// the algorithms that consume it. New rejects an out-of-scope option with
// a descriptive error instead of silently ignoring it; options absent
// from this table (memory sizing, observer, HTM configuration) apply to
// every algorithm. TestNewOptionValidation pins the full matrix.
var optionScope = map[string][]Algorithm{
	"WithAttempts":         {TLE, RWTLE, FGTLE, AdaptiveFGTLE, ALE, RHNOrec},
	"WithAdaptiveAttempts": {TLE, RWTLE, FGTLE, AdaptiveFGTLE, ALE},
	"WithLazySubscription": {RWTLE, FGTLE, AdaptiveFGTLE},
	"WithOrecs":            {FGTLE, ALE},
	"WithAdaptive":         {AdaptiveFGTLE},
}

// checkOptionScope rejects applied options the chosen algorithm ignores.
func checkOptionScope(alg Algorithm, applied []string) error {
	for _, name := range applied {
		scope := optionScope[name]
		ok := false
		for _, a := range scope {
			if a == alg {
				ok = true
				break
			}
		}
		if !ok {
			names := make([]string, len(scope))
			for i, a := range scope {
				names[i] = a.String()
			}
			return fmt.Errorf("rtle: %s has no effect under %v (applies to %s)",
				name, alg, strings.Join(names, ", "))
		}
	}
	return nil
}

// DefaultOrecs is the orec-array size New uses for FGTLE and ALE when
// WithOrecs is not given (the paper's middle-of-the-sweep configuration).
const DefaultOrecs = 256

// TM is an assembled transactional-memory instance: a heap plus a
// synchronization method over it.
type TM struct {
	m      *Memory
	method Method
	policy Policy
}

// New assembles a heap (unless WithMemory supplies one) and a
// synchronization method of the chosen algorithm over it. An option the
// chosen algorithm ignores (say WithOrecs under plain TLE) is a
// configuration error, not a no-op.
func New(alg Algorithm, opts ...Option) (*TM, error) {
	c := config{words: 1 << 20, orecs: DefaultOrecs}
	for _, opt := range opts {
		opt(&c)
	}
	if err := checkOptionScope(alg, c.applied); err != nil {
		return nil, err
	}
	m := c.memory
	if m == nil {
		if c.words <= 0 {
			return nil, fmt.Errorf("rtle: memory size %d words is not positive", c.words)
		}
		m = mem.New(c.words)
	}

	var method Method
	switch alg {
	case Lock:
		method = core.NewLockWithPolicy(m, c.policy)
	case TLE:
		method = core.NewTLE(m, c.policy)
	case HLE:
		method = core.NewHLE(m, c.policy)
	case RWTLE:
		method = core.NewRWTLE(m, c.policy)
	case FGTLE:
		if err := checkOrecs(c.orecs); err != nil {
			return nil, err
		}
		method = core.NewFGTLE(m, c.orecs, c.policy)
	case AdaptiveFGTLE:
		method = core.NewAdaptiveFGTLE(m, c.policy, c.adaptive)
	case ALE:
		if err := checkOrecs(c.orecs); err != nil {
			return nil, err
		}
		method = core.NewALE(m, c.orecs, c.policy)
	case NOrec:
		method = norec.New(m, c.policy)
	case RHNOrec:
		method = rhnorec.New(m, c.policy)
	default:
		return nil, fmt.Errorf("rtle: unknown algorithm %v", alg)
	}
	return &TM{m: m, method: method, policy: c.policy}, nil
}

func checkOrecs(n int) error {
	if n < 1 || n > 1<<20 || n&(n-1) != 0 {
		return fmt.Errorf("rtle: orec count %d is not a power of two in [1, 2^20]", n)
	}
	return nil
}

// MustNew is New for statically-known configurations; it panics on error.
func MustNew(alg Algorithm, opts ...Option) *TM {
	tm, err := New(alg, opts...)
	if err != nil {
		panic(err)
	}
	return tm
}

// Memory returns the simulated heap (allocate shared data here).
func (tm *TM) Memory() *Memory { return tm.m }

// Method returns the underlying synchronization method; type-assert to the
// concrete type (e.g. *AdaptiveMethod) for algorithm-specific probes.
func (tm *TM) Method() Method { return tm.method }

// Name returns the method's evaluation-legend name (e.g. "FG-TLE(256)").
func (tm *TM) Name() string { return tm.method.Name() }

// NewThread returns a per-goroutine execution handle. Threads must not be
// shared between goroutines.
func (tm *TM) NewThread() Thread { return tm.method.NewThread() }
