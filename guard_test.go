// Tests for the public guard API surface.
package rtle_test

import (
	"strings"
	"sync"
	"testing"

	"rtle"
)

// TestGuardMutexPublic drives the public Mutex from several goroutines
// through both forms.
func TestGuardMutexPublic(t *testing.T) {
	g, err := rtle.NewMutex(rtle.WithGuardMemoryWords(1<<16), rtle.WithGuardAttempts(4))
	if err != nil {
		t.Fatal(err)
	}
	counter := g.Memory().AllocLines(1)

	const goroutines, opsEach = 4, 250
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < opsEach; j++ {
				if j%8 == 0 {
					g.Lock()
					c := g.Ctx()
					c.Write(counter, c.Read(counter)+1)
					g.Unlock()
				} else {
					g.Do(func(c rtle.Context) {
						c.Write(counter, c.Read(counter)+1)
					})
				}
			}
		}(i)
	}
	wg.Wait()
	if got := g.Memory().Load(counter); got != goroutines*opsEach {
		t.Fatalf("counter = %d, want %d", got, goroutines*opsEach)
	}
	if s := g.Stats(); s.Ops != goroutines*opsEach {
		t.Fatalf("Stats.Ops = %d, want %d", s.Ops, goroutines*opsEach)
	}
}

// TestGuardOptionValidation pins the guard constructors' configuration
// errors.
func TestGuardOptionValidation(t *testing.T) {
	if _, err := rtle.NewMutex(rtle.WithGuardLazySubscription()); err == nil ||
		!strings.Contains(err.Error(), "WithGuardLazySubscription") {
		t.Errorf("NewMutex accepted lazy subscription (err = %v)", err)
	}
	if _, err := rtle.NewRWMutex(rtle.WithGuardLazySubscription()); err != nil {
		t.Errorf("NewRWMutex rejected lazy subscription: %v", err)
	}
	if _, err := rtle.NewMutex(rtle.WithGuardMemoryWords(-1)); err == nil {
		t.Error("NewMutex accepted a negative memory size")
	}
	if _, err := rtle.NewMutex(
		rtle.WithGuardMemory(rtle.NewMemory(1<<12)),
		rtle.WithGuardMemoryWords(1<<12)); err == nil {
		t.Error("NewMutex accepted WithGuardMemory + WithGuardMemoryWords")
	}
}

// TestGuardObserver checks the registry wiring through the guard path.
func TestGuardObserver(t *testing.T) {
	reg := rtle.NewRegistry()
	g := rtle.MustNewRWMutex(rtle.WithGuardMemoryWords(1<<14), rtle.WithGuardObserver(reg))
	word := g.Memory().AllocLines(1)
	for i := 0; i < 60; i++ {
		g.Do(func(c rtle.Context) { c.Write(word, c.Read(word)+1) })
		g.RDo(func(c rtle.Context) { _ = c.Read(word) })
	}
	snap := reg.Snapshot()
	if snap.Stats.Ops != 120 {
		t.Fatalf("observer saw %d ops, want 120", snap.Stats.Ops)
	}
	if s := g.Stats(); s != snap.Stats {
		t.Errorf("snapshot %+v != guard stats %+v", snap.Stats, s)
	}
}

// TestTMGuards checks guards built from a TM share its heap and policy.
func TestTMGuards(t *testing.T) {
	tm := rtle.MustNew(rtle.TLE, rtle.WithMemoryWords(1<<14), rtle.WithAttempts(4))
	g, err := tm.NewMutex()
	if err != nil {
		t.Fatal(err)
	}
	if g.Memory() != tm.Memory() {
		t.Fatal("TM.NewMutex did not share the TM heap")
	}
	word := tm.Memory().AllocLines(1)
	g.Do(func(c rtle.Context) { c.Write(word, 9) })
	var got uint64
	th := tm.NewThread()
	th.Atomic(func(c rtle.Context) { got = c.Read(word) })
	if got != 9 {
		t.Fatalf("thread read %d through shared heap, want 9", got)
	}
	rw, err := tm.NewRWMutex(rtle.WithGuardRetreat(rtle.GuardRetreatConfig{Disable: true}))
	if err != nil {
		t.Fatal(err)
	}
	if rw.Memory() != tm.Memory() {
		t.Fatal("TM.NewRWMutex did not share the TM heap")
	}
}
