package rtle_test

import (
	"fmt"

	"rtle"
)

// ExampleNew assembles a transactional-memory instance and runs critical
// sections through a Thread — the fixed-worker-identity shape the paper's
// harness uses.
func ExampleNew() {
	tm, err := rtle.New(rtle.TLE, rtle.WithAttempts(5))
	if err != nil {
		fmt.Println(err)
		return
	}
	m := tm.Memory()
	counter := m.AllocLines(1)

	th := tm.NewThread()
	for i := 0; i < 100; i++ {
		th.Atomic(func(c rtle.Context) {
			c.Write(counter, c.Read(counter)+1)
		})
	}
	fmt.Println(m.Load(counter))
	// Output: 100
}

// ExampleNew_optionScope shows that New rejects options the chosen
// algorithm would silently ignore.
func ExampleNew_optionScope() {
	_, err := rtle.New(rtle.TLE, rtle.WithOrecs(64))
	fmt.Println(err)
	// Output: rtle: WithOrecs has no effect under TLE (applies to FG-TLE, ALE)
}

// ExampleMutex shows the elision guard in both forms: the closure form
// Do, which speculates, and the bracket form Lock/Ctx/Unlock, which is
// always pessimistic — callable from any goroutine, like sync.Mutex.
func ExampleMutex() {
	g := rtle.MustNewMutex()
	counter := g.Memory().AllocLines(1)

	g.Do(func(c rtle.Context) { // elides: speculative, lock-subscribed
		c.Write(counter, c.Read(counter)+1)
	})

	g.Lock() // bracket form: takes the real lock
	g.Ctx().Write(counter, g.Ctx().Read(counter)+1)
	g.Unlock()

	fmt.Println(g.Memory().Load(counter))
	// Output: 2
}

// ExampleRWMutex distinguishes read-only sections (RDo) from updates
// (Do): under RW-TLE, read sections can commit even while a lock holder
// is in a writing phase.
func ExampleRWMutex() {
	g := rtle.MustNewRWMutex()
	m := g.Memory()
	a, b := m.AllocLines(1), m.AllocLines(1)

	g.Do(func(c rtle.Context) { // update section
		c.Write(a, 40)
		c.Write(b, 2)
	})

	var sum uint64
	g.RDo(func(c rtle.Context) { // read-only section
		sum = c.Read(a) + c.Read(b)
	})
	fmt.Println(sum)
	// Output: 42
}

// ExampleTM_NewRWMutex derives a guard from an assembled TM: the guard
// shares the TM's heap and policy, so guard sections and Thread sections
// coexist in one address space.
func ExampleTM_NewRWMutex() {
	tm := rtle.MustNew(rtle.RWTLE)
	g, err := tm.NewRWMutex()
	if err != nil {
		fmt.Println(err)
		return
	}
	shared := tm.Memory().AllocLines(1)

	th := tm.NewThread()
	th.Atomic(func(c rtle.Context) { c.Write(shared, 7) }) // Thread section

	var got uint64
	g.RDo(func(c rtle.Context) { got = c.Read(shared) }) // guard section
	fmt.Println(got)
	// Output: 7
}
